//! Runtime job state and the scheduler-visible job view.
//!
//! `JobRt` is the engine's private per-job record including ground truth
//! (true rates, exact progress). [`JobInfo`] is the subset a scheduler may
//! see; [`JobRecord`] is the per-job line in the final report.

use gfair_types::{GenId, JobId, JobSpec, JobState, ServerId, SimDuration, SimTime, UserId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Scheduler-visible job metadata.
///
/// Deliberately excludes the model's true per-generation rates: schedulers
/// learn speedups only from [`crate::ProfileReport`]s, mirroring the paper's
/// transparent profiling.
#[derive(Debug, Clone, PartialEq)]
pub struct JobInfo {
    /// Job identifier.
    pub id: JobId,
    /// Owning user.
    pub user: UserId,
    /// Gang size (GPUs needed simultaneously).
    pub gang: u32,
    /// Model name (an opaque label to schedulers).
    pub model: Arc<str>,
    /// Checkpoint + restore outage if the job is migrated.
    pub migration_cost: SimDuration,
    /// Submission time.
    pub arrival: SimTime,
    /// Current lifecycle state.
    pub state: JobState,
    /// Server the job is resident on (or migrating to), if placed.
    pub server: Option<ServerId>,
    /// When the job last completed a migration, if ever (lets schedulers
    /// honor migration cooldowns).
    pub last_migration: Option<SimTime>,
}

/// Engine-private runtime state of a job.
#[derive(Debug, Clone)]
pub(crate) struct JobRt {
    /// Immutable spec, including ground-truth rates.
    pub spec: JobSpec,
    /// Scheduler-visible view, kept in sync by the engine.
    pub info: JobInfo,
    /// Per-GPU progress in base-generation seconds (completion at
    /// `spec.service_secs`).
    pub progress: f64,
    /// True if a `Finish` event has been scheduled for this job.
    pub finishing: bool,
    /// First time the job ran, if ever (for queueing-delay stats).
    pub first_run: Option<SimTime>,
    /// Completion time, when finished.
    pub finish: Option<SimTime>,
    /// Runtime accumulated per generation since the last profile report for
    /// that generation.
    pub stint: BTreeMap<GenId, SimDuration>,
    /// GPU-seconds consumed per generation (gang x wall time).
    pub gpu_secs_by_gen: BTreeMap<GenId, f64>,
    /// Number of times this job was migrated.
    pub migrations: u32,
    /// Migration attempts started, successful or not (keys the fault
    /// injector's order-independent draws).
    pub attempts: u32,
    /// The in-flight migration is fated to fail at the restore stage (the
    /// draw happens at departure so the whole attempt uses one key).
    pub restore_fail: bool,
    /// Source server of the in-flight migration, for failure reporting.
    pub migrating_from: Option<ServerId>,
}

impl JobRt {
    /// Creates runtime state for a newly arrived job.
    pub fn new(spec: JobSpec) -> Self {
        let info = JobInfo {
            id: spec.id,
            user: spec.user,
            gang: spec.gang,
            model: Arc::from(spec.model.name.as_str()),
            migration_cost: spec.model.migration_cost(),
            arrival: spec.arrival,
            state: JobState::Pending,
            server: None,
            last_migration: None,
        };
        JobRt {
            spec,
            info,
            progress: 0.0,
            finishing: false,
            first_run: None,
            finish: None,
            stint: BTreeMap::new(),
            gpu_secs_by_gen: BTreeMap::new(),
            migrations: 0,
            attempts: 0,
            restore_fail: false,
            migrating_from: None,
        }
    }

    /// Remaining per-GPU service in base-generation seconds.
    pub fn remaining(&self) -> f64 {
        (self.spec.service_secs - self.progress).max(0.0)
    }

    /// True rate on generation `gen` (engine-side only).
    pub fn true_rate(&self, gen: GenId) -> f64 {
        self.spec.model.rate(gen)
    }
}

/// Dense job table indexed by `JobId::index()`.
///
/// Job ids in a trace are minted sequentially, so a slab beats a tree:
/// `jobs[id]` sits on every hot path (arrival placement, per-grant accrual,
/// view queries), where a tree descent over tens of thousands of jobs
/// dominates. Sparse ids still work — absent slots simply hold `None`.
#[derive(Debug, Clone, Default)]
pub(crate) struct JobTable {
    slots: Vec<Option<JobRt>>,
    len: usize,
}

impl JobTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        JobTable::default()
    }

    /// Number of jobs present.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Inserts `job` under `id`, returning the previous occupant if any.
    pub fn insert(&mut self, id: JobId, job: JobRt) -> Option<JobRt> {
        let i = id.index();
        if self.slots.len() <= i {
            self.slots.resize_with(i + 1, || None);
        }
        let prev = self.slots[i].replace(job);
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    /// The job under `id`, if present.
    pub fn get(&self, id: JobId) -> Option<&JobRt> {
        self.slots.get(id.index()).and_then(Option::as_ref)
    }

    /// Mutable access to the job under `id`, if present.
    pub fn get_mut(&mut self, id: JobId) -> Option<&mut JobRt> {
        self.slots.get_mut(id.index()).and_then(Option::as_mut)
    }

    /// All (id, job) pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (JobId, &JobRt)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|j| (JobId::new(i as u32), j)))
    }

    /// Consumes the table, yielding (id, job) pairs in id order.
    pub fn into_iter(self) -> impl Iterator<Item = (JobId, JobRt)> {
        self.slots
            .into_iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|j| (JobId::new(i as u32), j)))
    }
}

impl std::ops::Index<JobId> for JobTable {
    type Output = JobRt;
    fn index(&self, id: JobId) -> &JobRt {
        self.get(id).expect("unknown job id")
    }
}

/// Per-job line in the final [`crate::SimReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Job identifier.
    pub id: JobId,
    /// Owning user.
    pub user: UserId,
    /// Model name.
    pub model: String,
    /// Gang size.
    pub gang: u32,
    /// Per-GPU service demand in base-generation seconds.
    pub service_secs: f64,
    /// Submission time.
    pub arrival: SimTime,
    /// First time the job ran, if it ever ran.
    pub first_run: Option<SimTime>,
    /// Completion time, if it finished before the horizon.
    pub finish: Option<SimTime>,
    /// GPU-seconds consumed per generation.
    pub gpu_secs_by_gen: BTreeMap<GenId, f64>,
    /// Number of migrations the job underwent.
    pub migrations: u32,
}

impl JobRecord {
    /// Job completion time (finish − arrival), if finished.
    pub fn jct(&self) -> Option<SimDuration> {
        self.finish.map(|f| f.saturating_since(self.arrival))
    }

    /// Queueing delay before the first run, if the job ever ran.
    pub fn queue_delay(&self) -> Option<SimDuration> {
        self.first_run.map(|f| f.saturating_since(self.arrival))
    }

    /// Total GPU-seconds consumed across generations.
    pub fn total_gpu_secs(&self) -> f64 {
        self.gpu_secs_by_gen.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfair_types::ModelProfile;

    fn rt() -> JobRt {
        let model = Arc::new(ModelProfile::with_default_overheads(
            "ResNet-50",
            vec![1.0, 2.0, 4.0],
        ));
        JobRt::new(JobSpec::new(
            JobId::new(1),
            UserId::new(2),
            model,
            4,
            3600.0,
            SimTime::from_secs(100),
        ))
    }

    #[test]
    fn new_job_is_pending_and_unplaced() {
        let j = rt();
        assert_eq!(j.info.state, JobState::Pending);
        assert_eq!(j.info.server, None);
        assert_eq!(j.progress, 0.0);
        assert_eq!(j.remaining(), 3600.0);
    }

    #[test]
    fn info_mirrors_spec() {
        let j = rt();
        assert_eq!(j.info.id, JobId::new(1));
        assert_eq!(j.info.user, UserId::new(2));
        assert_eq!(j.info.gang, 4);
        assert_eq!(&*j.info.model, "ResNet-50");
        assert_eq!(j.info.migration_cost, SimDuration::from_secs(60));
    }

    #[test]
    fn remaining_clamps_at_zero() {
        let mut j = rt();
        j.progress = 4000.0;
        assert_eq!(j.remaining(), 0.0);
    }

    #[test]
    fn record_jct_and_queue_delay() {
        let rec = JobRecord {
            id: JobId::new(1),
            user: UserId::new(0),
            model: "m".into(),
            gang: 2,
            service_secs: 100.0,
            arrival: SimTime::from_secs(10),
            first_run: Some(SimTime::from_secs(70)),
            finish: Some(SimTime::from_secs(250)),
            gpu_secs_by_gen: BTreeMap::from([(GenId::new(0), 360.0)]),
            migrations: 1,
        };
        assert_eq!(rec.jct(), Some(SimDuration::from_secs(240)));
        assert_eq!(rec.queue_delay(), Some(SimDuration::from_secs(60)));
        assert_eq!(rec.total_gpu_secs(), 360.0);
    }

    #[test]
    fn unfinished_record_has_no_jct() {
        let rec = JobRecord {
            id: JobId::new(1),
            user: UserId::new(0),
            model: "m".into(),
            gang: 1,
            service_secs: 100.0,
            arrival: SimTime::ZERO,
            first_run: None,
            finish: None,
            gpu_secs_by_gen: BTreeMap::new(),
            migrations: 0,
        };
        assert_eq!(rec.jct(), None);
        assert_eq!(rec.queue_delay(), None);
        assert_eq!(rec.total_gpu_secs(), 0.0);
    }
}
