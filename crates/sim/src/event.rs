//! The event queue: a deterministic priority queue of simulation events.
//!
//! Events are ordered by time, then by a fixed kind priority (completions
//! before arrivals before the scheduling round, so a round always sees the
//! freshest job set), then by insertion sequence — making simultaneous
//! events fully deterministic.

use gfair_types::{JobId, ServerId, SimTime, UserId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A job completes its service demand (scheduled mid-round at the exact
    /// completion instant).
    Finish(JobId),
    /// A migrating job becomes resident on its destination server.
    MigrationDone(JobId),
    /// A server goes offline, evicting its resident jobs.
    ServerFail(ServerId),
    /// A failed server comes back online.
    ServerRecover(ServerId),
    /// The central scheduler loses contact with a server's local scheduler
    /// (the server itself keeps running).
    PartitionStart(ServerId),
    /// Connectivity to a partitioned server is restored.
    PartitionEnd(ServerId),
    /// A user's ticket endowment changes (priority change).
    TicketChange(UserId, u64),
    /// A job is submitted.
    Arrival(JobId),
    /// The per-quantum scheduling round.
    Round,
}

impl EventKind {
    /// Priority for simultaneous events; lower fires first.
    fn priority(self) -> u8 {
        match self {
            EventKind::Finish(_) => 0,
            EventKind::MigrationDone(_) => 1,
            EventKind::ServerFail(_) => 2,
            EventKind::ServerRecover(_) => 3,
            EventKind::PartitionStart(_) => 4,
            EventKind::PartitionEnd(_) => 5,
            EventKind::TicketChange(_, _) => 6,
            EventKind::Arrival(_) => 7,
            EventKind::Round => 8,
        }
    }
}

/// A scheduled event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// When the event fires.
    pub time: SimTime,
    /// Insertion sequence, breaking remaining ties deterministically.
    pub seq: u64,
    /// What fires.
    pub kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is on top.
        other
            .time
            .cmp(&self.time)
            .then(other.kind.priority().cmp(&self.kind.priority()))
            .then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic event queue.
///
/// Runtime events (finishes, migrations, rounds) live in a binary heap. The
/// trace's arrivals — known in full before the run starts — are *staged* in
/// a sorted side list instead of being front-loaded into the heap: the heap
/// then only ever holds the near-future working set, so its operations stay
/// logarithmic in live events rather than in the whole remaining trace.
/// `pop`/`peek` merge the two sources under the same total order, so the
/// delivery sequence is identical to a single heap holding everything.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    /// Staged events, sorted with the earliest-firing event **last** so the
    /// next one pops in O(1).
    staged: Vec<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` to fire at `time`.
    pub fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    /// Stages a batch of events without touching the heap (used for the
    /// full arrival trace at simulation construction). Sequence numbers are
    /// assigned in iteration order, exactly as a `push` loop would, so the
    /// global delivery order is unchanged.
    pub fn stage(&mut self, batch: impl IntoIterator<Item = (SimTime, EventKind)>) {
        for (time, kind) in batch {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.staged.push(Event { time, seq, kind });
        }
        // `Event`'s Ord is inverted (min-first for the max-heap), so an
        // ascending sort puts the earliest-firing event last.
        self.staged.sort();
    }

    /// Pops the next event in deterministic order.
    pub fn pop(&mut self) -> Option<Event> {
        match (self.heap.peek(), self.staged.last()) {
            // Inverted Ord: "greater" means "fires earlier".
            (Some(h), Some(s)) if h > s => self.heap.pop(),
            (Some(_), None) => self.heap.pop(),
            _ => self.staged.pop(),
        }
    }

    /// Peeks at the next event without removing it.
    pub fn peek(&self) -> Option<&Event> {
        match (self.heap.peek(), self.staged.last()) {
            (Some(h), Some(s)) => Some(if h > s { h } else { s }),
            (Some(h), None) => Some(h),
            (None, s) => s,
        }
    }

    /// Number of pending events (staged ones included).
    pub fn len(&self) -> usize {
        self.heap.len() + self.staged.len()
    }

    /// Returns true if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty() && self.staged.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), EventKind::Round);
        q.push(SimTime::from_secs(5), EventKind::Arrival(JobId::new(1)));
        q.push(SimTime::from_secs(7), EventKind::Finish(JobId::new(2)));
        assert_eq!(q.pop().unwrap().time, SimTime::from_secs(5));
        assert_eq!(q.pop().unwrap().time, SimTime::from_secs(7));
        assert_eq!(q.pop().unwrap().time, SimTime::from_secs(10));
        assert!(q.pop().is_none());
    }

    #[test]
    fn simultaneous_events_order_by_kind_priority() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(60);
        q.push(t, EventKind::Round);
        q.push(t, EventKind::Arrival(JobId::new(1)));
        q.push(t, EventKind::Finish(JobId::new(2)));
        q.push(t, EventKind::MigrationDone(JobId::new(3)));
        assert_eq!(q.pop().unwrap().kind, EventKind::Finish(JobId::new(2)));
        assert_eq!(
            q.pop().unwrap().kind,
            EventKind::MigrationDone(JobId::new(3))
        );
        assert_eq!(q.pop().unwrap().kind, EventKind::Arrival(JobId::new(1)));
        assert_eq!(q.pop().unwrap().kind, EventKind::Round);
    }

    #[test]
    fn equal_time_and_kind_orders_by_insertion() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        q.push(t, EventKind::Arrival(JobId::new(5)));
        q.push(t, EventKind::Arrival(JobId::new(3)));
        // Insertion order wins, not job id.
        assert_eq!(q.pop().unwrap().kind, EventKind::Arrival(JobId::new(5)));
        assert_eq!(q.pop().unwrap().kind, EventKind::Arrival(JobId::new(3)));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, EventKind::Round);
        assert_eq!(q.peek().unwrap().kind, EventKind::Round);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn staged_and_pushed_events_merge_in_global_order() {
        // A staged trace plus runtime pushes must pop exactly as if every
        // event had gone through one heap.
        let mut q = EventQueue::new();
        q.stage(vec![
            (SimTime::from_secs(10), EventKind::Arrival(JobId::new(1))),
            (SimTime::from_secs(30), EventKind::Arrival(JobId::new(2))),
            (SimTime::from_secs(20), EventKind::Arrival(JobId::new(3))),
        ]);
        q.push(SimTime::from_secs(20), EventKind::Finish(JobId::new(9)));
        q.push(SimTime::from_secs(5), EventKind::Round);
        assert_eq!(q.len(), 5);
        assert_eq!(q.pop().unwrap().kind, EventKind::Round);
        assert_eq!(q.pop().unwrap().kind, EventKind::Arrival(JobId::new(1)));
        // At t=20 the Finish outranks the Arrival by kind priority.
        assert_eq!(q.pop().unwrap().kind, EventKind::Finish(JobId::new(9)));
        assert_eq!(q.pop().unwrap().kind, EventKind::Arrival(JobId::new(3)));
        assert_eq!(q.pop().unwrap().kind, EventKind::Arrival(JobId::new(2)));
        assert!(q.pop().is_none());
    }

    #[test]
    fn staged_ties_keep_staging_order() {
        // Equal-time staged events keep their staging (trace) order, just as
        // insertion order broke the tie when everything was pushed.
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(7);
        q.stage(vec![
            (t, EventKind::Arrival(JobId::new(5))),
            (t, EventKind::Arrival(JobId::new(3))),
        ]);
        assert_eq!(q.peek().unwrap().kind, EventKind::Arrival(JobId::new(5)));
        assert_eq!(q.pop().unwrap().kind, EventKind::Arrival(JobId::new(5)));
        assert_eq!(q.pop().unwrap().kind, EventKind::Arrival(JobId::new(3)));
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert!(q.peek().is_none());
        assert!(q.pop().is_none());
    }
}
