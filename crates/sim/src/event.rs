//! The event queue: a deterministic priority queue of simulation events.
//!
//! Events are ordered by time, then by a fixed kind priority (completions
//! before arrivals before the scheduling round, so a round always sees the
//! freshest job set), then by insertion sequence — making simultaneous
//! events fully deterministic.

use gfair_types::{JobId, ServerId, SimTime, UserId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A job completes its service demand (scheduled mid-round at the exact
    /// completion instant).
    Finish(JobId),
    /// A migrating job becomes resident on its destination server.
    MigrationDone(JobId),
    /// A server goes offline, evicting its resident jobs.
    ServerFail(ServerId),
    /// A failed server comes back online.
    ServerRecover(ServerId),
    /// A user's ticket endowment changes (priority change).
    TicketChange(UserId, u64),
    /// A job is submitted.
    Arrival(JobId),
    /// The per-quantum scheduling round.
    Round,
}

impl EventKind {
    /// Priority for simultaneous events; lower fires first.
    fn priority(self) -> u8 {
        match self {
            EventKind::Finish(_) => 0,
            EventKind::MigrationDone(_) => 1,
            EventKind::ServerFail(_) => 2,
            EventKind::ServerRecover(_) => 3,
            EventKind::TicketChange(_, _) => 4,
            EventKind::Arrival(_) => 5,
            EventKind::Round => 6,
        }
    }
}

/// A scheduled event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// When the event fires.
    pub time: SimTime,
    /// Insertion sequence, breaking remaining ties deterministically.
    pub seq: u64,
    /// What fires.
    pub kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is on top.
        other
            .time
            .cmp(&self.time)
            .then(other.kind.priority().cmp(&self.kind.priority()))
            .then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` to fire at `time`.
    pub fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    /// Pops the next event in deterministic order.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Peeks at the next event without removing it.
    pub fn peek(&self) -> Option<&Event> {
        self.heap.peek()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns true if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), EventKind::Round);
        q.push(SimTime::from_secs(5), EventKind::Arrival(JobId::new(1)));
        q.push(SimTime::from_secs(7), EventKind::Finish(JobId::new(2)));
        assert_eq!(q.pop().unwrap().time, SimTime::from_secs(5));
        assert_eq!(q.pop().unwrap().time, SimTime::from_secs(7));
        assert_eq!(q.pop().unwrap().time, SimTime::from_secs(10));
        assert!(q.pop().is_none());
    }

    #[test]
    fn simultaneous_events_order_by_kind_priority() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(60);
        q.push(t, EventKind::Round);
        q.push(t, EventKind::Arrival(JobId::new(1)));
        q.push(t, EventKind::Finish(JobId::new(2)));
        q.push(t, EventKind::MigrationDone(JobId::new(3)));
        assert_eq!(q.pop().unwrap().kind, EventKind::Finish(JobId::new(2)));
        assert_eq!(
            q.pop().unwrap().kind,
            EventKind::MigrationDone(JobId::new(3))
        );
        assert_eq!(q.pop().unwrap().kind, EventKind::Arrival(JobId::new(1)));
        assert_eq!(q.pop().unwrap().kind, EventKind::Round);
    }

    #[test]
    fn equal_time_and_kind_orders_by_insertion() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        q.push(t, EventKind::Arrival(JobId::new(5)));
        q.push(t, EventKind::Arrival(JobId::new(3)));
        // Insertion order wins, not job id.
        assert_eq!(q.pop().unwrap().kind, EventKind::Arrival(JobId::new(5)));
        assert_eq!(q.pop().unwrap().kind, EventKind::Arrival(JobId::new(3)));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, EventKind::Round);
        assert_eq!(q.peek().unwrap().kind, EventKind::Round);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert!(q.peek().is_none());
        assert!(q.pop().is_none());
    }
}
