//! The event queue: a deterministic priority queue of simulation events.
//!
//! Events are ordered by time, then by a fixed kind priority (completions
//! before arrivals before the scheduling round, so a round always sees the
//! freshest job set), then by insertion sequence — making simultaneous
//! events fully deterministic.

use gfair_types::{JobId, ServerId, SimTime, UserId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A job completes its service demand (scheduled mid-round at the exact
    /// completion instant).
    Finish(JobId),
    /// A migrating job becomes resident on its destination server.
    MigrationDone(JobId),
    /// A server goes offline, evicting its resident jobs.
    ServerFail(ServerId),
    /// A failed server comes back online.
    ServerRecover(ServerId),
    /// The central scheduler loses contact with a server's local scheduler
    /// (the server itself keeps running).
    PartitionStart(ServerId),
    /// Connectivity to a partitioned server is restored.
    PartitionEnd(ServerId),
    /// A user's ticket endowment changes (priority change).
    TicketChange(UserId, u64),
    /// A job is submitted.
    Arrival(JobId),
    /// The per-quantum scheduling round.
    Round,
}

impl EventKind {
    /// Priority for simultaneous events; lower fires first.
    fn priority(self) -> u8 {
        match self {
            EventKind::Finish(_) => 0,
            EventKind::MigrationDone(_) => 1,
            EventKind::ServerFail(_) => 2,
            EventKind::ServerRecover(_) => 3,
            EventKind::PartitionStart(_) => 4,
            EventKind::PartitionEnd(_) => 5,
            EventKind::TicketChange(_, _) => 6,
            EventKind::Arrival(_) => 7,
            EventKind::Round => 8,
        }
    }

    /// The shard a runtime push lands in. Kinds that share event-rate
    /// behavior share a heap: job completions (the bulk of runtime pushes)
    /// get their own, migrations their own, the rare control-plane kinds
    /// (failures, recoveries, partitions, ticket changes) one, arrivals one,
    /// and the round timer one.
    fn shard(self) -> usize {
        match self {
            EventKind::Finish(_) => 0,
            EventKind::MigrationDone(_) => 1,
            EventKind::ServerFail(_)
            | EventKind::ServerRecover(_)
            | EventKind::PartitionStart(_)
            | EventKind::PartitionEnd(_)
            | EventKind::TicketChange(_, _) => 2,
            EventKind::Arrival(_) => 3,
            EventKind::Round => 4,
        }
    }
}

/// Number of per-class heaps in the sharded queue.
const NUM_SHARDS: usize = 5;

/// A scheduled event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// When the event fires.
    pub time: SimTime,
    /// Insertion sequence, breaking remaining ties deterministically.
    pub seq: u64,
    /// What fires.
    pub kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is on top.
        other
            .time
            .cmp(&self.time)
            .then(other.kind.priority().cmp(&self.kind.priority()))
            .then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic event queue, sharded by event class.
///
/// Runtime events live in per-class binary heaps (completions, migrations,
/// control-plane events, arrivals, the round timer), so a push or pop costs
/// `log` of the *local* working set — a burst of mid-round completions never
/// inflates the cost of scheduling the next round tick. The trace's arrivals
/// — known in full before the run starts — are *staged* in a sorted side
/// list instead of being front-loaded into any heap, so the heaps only ever
/// hold the near-future working set.
///
/// `pop`/`peek` take the lazy max across the shard tops and the staged tail
/// under the same inverted (time, kind-priority, seq) total order, so the
/// delivery sequence is identical to a single heap holding everything —
/// asserted by a differential proptest against exactly that oracle.
#[derive(Debug, Default)]
pub struct EventQueue {
    /// Per-class heaps; see [`EventKind::shard`] for the class map.
    shards: [BinaryHeap<Event>; NUM_SHARDS],
    /// Staged events, sorted with the earliest-firing event **last** so the
    /// next one pops in O(1).
    staged: Vec<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` to fire at `time`.
    pub fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.shards[kind.shard()].push(Event { time, seq, kind });
    }

    /// Stages a batch of events without touching the heaps (used for the
    /// full arrival trace at simulation construction). Sequence numbers are
    /// assigned in iteration order, exactly as a `push` loop would, so the
    /// global delivery order is unchanged.
    ///
    /// Only the new batch is sorted; it is then merged with the
    /// already-sorted staged list, so a second `stage()` call costs
    /// O(new·log new + total) instead of re-sorting everything.
    pub fn stage(&mut self, batch: impl IntoIterator<Item = (SimTime, EventKind)>) {
        let start = self.staged.len();
        for (time, kind) in batch {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.staged.push(Event { time, seq, kind });
        }
        // `Event`'s Ord is inverted (min-first for the max-heap), so an
        // ascending sort puts the earliest-firing event last. Seqs are
        // unique, so the order is total and `sort_unstable` is safe.
        self.staged[start..].sort_unstable();
        if start > 0 {
            // Merge the two sorted runs (both ascending under the inverted
            // order) instead of re-sorting the whole staged list.
            let mut merged = Vec::with_capacity(self.staged.len());
            let (old, new) = self.staged.split_at(start);
            let (mut i, mut j) = (0usize, 0usize);
            while i < old.len() && j < new.len() {
                if old[i] <= new[j] {
                    merged.push(old[i]);
                    i += 1;
                } else {
                    merged.push(new[j]);
                    j += 1;
                }
            }
            merged.extend_from_slice(&old[i..]);
            merged.extend_from_slice(&new[j..]);
            self.staged = merged;
        }
    }

    /// Pops the next event in deterministic order.
    pub fn pop(&mut self) -> Option<Event> {
        // Inverted Ord: "greater" means "fires earlier". Seqs are unique, so
        // the max across shard tops and the staged tail is unambiguous.
        let mut best: Option<(usize, Event)> = None;
        for (i, shard) in self.shards.iter().enumerate() {
            if let Some(&e) = shard.peek() {
                if best.is_none_or(|(_, b)| e > b) {
                    best = Some((i, e));
                }
            }
        }
        if let Some(&s) = self.staged.last() {
            if best.is_none_or(|(_, b)| s > b) {
                return self.staged.pop();
            }
        }
        best.and_then(|(i, _)| self.shards[i].pop())
    }

    /// Peeks at the next event without removing it.
    pub fn peek(&self) -> Option<&Event> {
        let mut best: Option<&Event> = self.staged.last();
        for shard in &self.shards {
            if let Some(e) = shard.peek() {
                if best.is_none_or(|b| e > b) {
                    best = Some(e);
                }
            }
        }
        best
    }

    /// Number of pending events (staged ones included).
    pub fn len(&self) -> usize {
        self.shards.iter().map(BinaryHeap::len).sum::<usize>() + self.staged.len()
    }

    /// Returns true if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(BinaryHeap::is_empty) && self.staged.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), EventKind::Round);
        q.push(SimTime::from_secs(5), EventKind::Arrival(JobId::new(1)));
        q.push(SimTime::from_secs(7), EventKind::Finish(JobId::new(2)));
        assert_eq!(q.pop().unwrap().time, SimTime::from_secs(5));
        assert_eq!(q.pop().unwrap().time, SimTime::from_secs(7));
        assert_eq!(q.pop().unwrap().time, SimTime::from_secs(10));
        assert!(q.pop().is_none());
    }

    #[test]
    fn simultaneous_events_order_by_kind_priority() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(60);
        q.push(t, EventKind::Round);
        q.push(t, EventKind::Arrival(JobId::new(1)));
        q.push(t, EventKind::Finish(JobId::new(2)));
        q.push(t, EventKind::MigrationDone(JobId::new(3)));
        assert_eq!(q.pop().unwrap().kind, EventKind::Finish(JobId::new(2)));
        assert_eq!(
            q.pop().unwrap().kind,
            EventKind::MigrationDone(JobId::new(3))
        );
        assert_eq!(q.pop().unwrap().kind, EventKind::Arrival(JobId::new(1)));
        assert_eq!(q.pop().unwrap().kind, EventKind::Round);
    }

    #[test]
    fn equal_time_and_kind_orders_by_insertion() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        q.push(t, EventKind::Arrival(JobId::new(5)));
        q.push(t, EventKind::Arrival(JobId::new(3)));
        // Insertion order wins, not job id.
        assert_eq!(q.pop().unwrap().kind, EventKind::Arrival(JobId::new(5)));
        assert_eq!(q.pop().unwrap().kind, EventKind::Arrival(JobId::new(3)));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, EventKind::Round);
        assert_eq!(q.peek().unwrap().kind, EventKind::Round);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn staged_and_pushed_events_merge_in_global_order() {
        // A staged trace plus runtime pushes must pop exactly as if every
        // event had gone through one heap.
        let mut q = EventQueue::new();
        q.stage(vec![
            (SimTime::from_secs(10), EventKind::Arrival(JobId::new(1))),
            (SimTime::from_secs(30), EventKind::Arrival(JobId::new(2))),
            (SimTime::from_secs(20), EventKind::Arrival(JobId::new(3))),
        ]);
        q.push(SimTime::from_secs(20), EventKind::Finish(JobId::new(9)));
        q.push(SimTime::from_secs(5), EventKind::Round);
        assert_eq!(q.len(), 5);
        assert_eq!(q.pop().unwrap().kind, EventKind::Round);
        assert_eq!(q.pop().unwrap().kind, EventKind::Arrival(JobId::new(1)));
        // At t=20 the Finish outranks the Arrival by kind priority.
        assert_eq!(q.pop().unwrap().kind, EventKind::Finish(JobId::new(9)));
        assert_eq!(q.pop().unwrap().kind, EventKind::Arrival(JobId::new(3)));
        assert_eq!(q.pop().unwrap().kind, EventKind::Arrival(JobId::new(2)));
        assert!(q.pop().is_none());
    }

    #[test]
    fn staged_ties_keep_staging_order() {
        // Equal-time staged events keep their staging (trace) order, just as
        // insertion order broke the tie when everything was pushed.
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(7);
        q.stage(vec![
            (t, EventKind::Arrival(JobId::new(5))),
            (t, EventKind::Arrival(JobId::new(3))),
        ]);
        assert_eq!(q.peek().unwrap().kind, EventKind::Arrival(JobId::new(5)));
        assert_eq!(q.pop().unwrap().kind, EventKind::Arrival(JobId::new(5)));
        assert_eq!(q.pop().unwrap().kind, EventKind::Arrival(JobId::new(3)));
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert!(q.peek().is_none());
        assert!(q.pop().is_none());
    }

    #[test]
    fn second_stage_batch_merges_with_first() {
        // A later stage() batch interleaves with the first one under the
        // global order (the merge path, not the initial sort path).
        let mut q = EventQueue::new();
        q.stage(vec![
            (SimTime::from_secs(10), EventKind::Arrival(JobId::new(1))),
            (SimTime::from_secs(30), EventKind::Arrival(JobId::new(2))),
        ]);
        q.stage(vec![
            (SimTime::from_secs(5), EventKind::Arrival(JobId::new(3))),
            (SimTime::from_secs(30), EventKind::Arrival(JobId::new(4))),
            (SimTime::from_secs(40), EventKind::Arrival(JobId::new(5))),
        ]);
        let order: Vec<EventKind> = std::iter::from_fn(|| q.pop()).map(|e| e.kind).collect();
        assert_eq!(
            order,
            vec![
                EventKind::Arrival(JobId::new(3)),
                EventKind::Arrival(JobId::new(1)),
                // t=30 tie: the first batch's event staged first.
                EventKind::Arrival(JobId::new(2)),
                EventKind::Arrival(JobId::new(4)),
                EventKind::Arrival(JobId::new(5)),
            ]
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Decodes a (time, kind-selector) pair into an event, covering every
    /// `EventKind` priority.
    fn decode(time: u64, sel: u8) -> (SimTime, EventKind) {
        let id = u32::from(sel);
        let kind = match sel % 9 {
            0 => EventKind::Finish(JobId::new(id)),
            1 => EventKind::MigrationDone(JobId::new(id)),
            2 => EventKind::ServerFail(ServerId::new(id)),
            3 => EventKind::ServerRecover(ServerId::new(id)),
            4 => EventKind::PartitionStart(ServerId::new(id)),
            5 => EventKind::PartitionEnd(ServerId::new(id)),
            6 => EventKind::TicketChange(UserId::new(id), u64::from(sel)),
            7 => EventKind::Arrival(JobId::new(id)),
            _ => EventKind::Round,
        };
        (SimTime::from_secs(time), kind)
    }

    /// Single-heap oracle: the pre-sharding implementation — one
    /// `BinaryHeap` holding everything, seqs assigned in submission order.
    #[derive(Default)]
    struct OracleQueue {
        heap: BinaryHeap<Event>,
        next_seq: u64,
    }

    impl OracleQueue {
        fn push(&mut self, time: SimTime, kind: EventKind) {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Event { time, seq, kind });
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Any mix of staged batches, runtime pushes and interleaved
        /// pops/peeks delivers exactly the sequence a single global heap
        /// would. Each op is (selector, batch, pop-count): selector 0 pushes
        /// the batch, 1 stages it, 2 pops `pop-count` events. Timestamps are
        /// drawn from a small range so simultaneous events across all kind
        /// priorities (the tie-break cases) are common.
        #[test]
        fn sharded_queue_matches_single_heap_oracle(
            ops in collection::vec(
                (
                    0u8..3,
                    collection::vec((0u64..16, 0u8..=255), 0..12),
                    1usize..24,
                ),
                1..24,
            ),
        ) {
            let mut q = EventQueue::new();
            let mut oracle = OracleQueue::default();
            for (sel, batch, pops) in ops {
                match sel {
                    0 => {
                        for (t, s) in batch {
                            let (time, kind) = decode(t, s);
                            q.push(time, kind);
                            oracle.push(time, kind);
                        }
                    }
                    1 => {
                        let decoded: Vec<_> =
                            batch.iter().map(|&(t, s)| decode(t, s)).collect();
                        q.stage(decoded.clone());
                        for (time, kind) in decoded {
                            oracle.push(time, kind);
                        }
                    }
                    _ => {
                        for _ in 0..pops {
                            prop_assert_eq!(q.len(), oracle.heap.len());
                            let expect = oracle.heap.pop();
                            prop_assert_eq!(q.peek().copied(), expect);
                            prop_assert_eq!(q.pop(), expect);
                            if expect.is_none() {
                                break;
                            }
                        }
                    }
                }
            }
            // Drain the rest: full delivery sequences must match.
            while let Some(expect) = oracle.heap.pop() {
                prop_assert_eq!(q.pop(), Some(expect));
            }
            prop_assert!(q.is_empty());
        }
    }
}
