//! Offline stand-in for the `criterion` crate.
//!
//! Provides the benchmark-group API surface this workspace uses, backed by a
//! simple wall-clock timer: each benchmark runs a short warm-up, then a fixed
//! number of timed samples, and prints min/median/mean per iteration. There
//! are no statistical comparisons, plots, or saved baselines.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function/parameter` id.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id that is just the parameter's display form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; `iter` runs and times the routine.
pub struct Bencher {
    samples: u64,
    /// Per-iteration time of each sample, filled by `iter`.
    timings: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, first warming up, then collecting samples. Each
    /// sample batches enough iterations to be measurable.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + batch sizing: grow the batch until it takes >= 1ms.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let took = start.elapsed();
            if took >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        self.timings.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.timings.push(start.elapsed() / batch as u32);
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1) as u64;
        self
    }

    /// Sets the measurement-time hint. The vendored harness samples a fixed
    /// count, so this is accepted and ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.samples,
            timings: Vec::new(),
        };
        f(&mut b, input);
        self.report(&id.to_string(), &b.timings);
        self
    }

    /// Runs one benchmark without a distinguished input.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.samples,
            timings: Vec::new(),
        };
        f(&mut b);
        self.report(&id.to_string(), &b.timings);
        self
    }

    fn report(&self, id: &str, timings: &[Duration]) {
        if timings.is_empty() {
            println!("{}/{id}: no samples", self.name);
            return;
        }
        let mut sorted = timings.to_vec();
        sorted.sort();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "{}/{id}: min {} | median {} | mean {} ({} samples)",
            self.name,
            fmt_dur(min),
            fmt_dur(median),
            fmt_dur(mean),
            sorted.len()
        );
    }

    /// Ends the group (prints nothing extra; kept for API compatibility).
    pub fn finish(&mut self) {}
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    default_samples: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_samples: 20,
        }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        let samples = self.default_samples;
        println!("== {name} ==");
        BenchmarkGroup {
            name: name.to_string(),
            samples,
            _parent: self,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        self.benchmark_group(&name).bench_function("all", f);
        self
    }

    /// Accepts configuration fluently (no-op; kept for API compatibility).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with `--test`; skip timing there.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_addition(c: &mut Criterion) {
        let mut group = c.benchmark_group("add");
        group.sample_size(5);
        for n in [10u64, 100] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| (0..n).sum::<u64>());
            });
        }
        group.finish();
    }

    criterion_group!(benches, bench_addition);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("8gpus").to_string(), "8gpus");
    }
}
