//! Offline stand-in for the `serde_json` crate.
//!
//! Renders and parses JSON against the vendored serde shim's [`Value`]
//! tree. Numbers round-trip exactly: integers are emitted verbatim and
//! floats use Rust's shortest round-trippable `Display` form.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt::Write as _;

pub use serde::Value as JsonValue;

/// Errors from serialization or deserialization.
pub type Error = DeError;

/// A `Result` alias matching upstream's shape.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Returns an error if the value contains a non-finite float (JSON has no
/// representation for NaN or infinities).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0)?;
    Ok(out)
}

/// Serializes `value` to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Returns an error if the value contains a non-finite float.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Parses a value of type `T` from a JSON string.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse(s)?;
    T::from_value(&value)
}

/// Escapes and writes a JSON string literal.
fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) -> Result<()> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(DeError::msg("cannot serialize non-finite float as JSON"));
            }
            // Rust's Display for f64 is the shortest string that parses
            // back to the same value; integral floats gain a `.0` so the
            // number re-parses as a float.
            if f.fract() == 0.0 && f.abs() < 1e15 {
                let _ = write!(out, "{f:.1}");
            } else {
                let _ = write!(out, "{f}");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * (depth + 1)));
                }
                write_value(item, out, indent, depth + 1)?;
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * depth));
            }
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * (depth + 1)));
                }
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1)?;
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * depth));
            }
            out.push('}');
        }
    }
    Ok(())
}

/// Parses a JSON document into a [`Value`].
///
/// # Errors
///
/// Returns an error describing the first syntax problem encountered.
pub fn parse(s: &str) -> Result<Value> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(DeError::msg(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(DeError::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(DeError::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(DeError::msg(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(DeError::msg(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(DeError::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(DeError::msg("lone leading surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(DeError::msg("invalid trailing surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| DeError::msg("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| DeError::msg("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 consumed pos already
                        }
                        other => {
                            return Err(DeError::msg(format!(
                                "invalid escape {:?}",
                                other.map(|b| b as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| DeError::msg("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(DeError::msg("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| DeError::msg("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| DeError::msg("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| DeError::msg("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| DeError::msg(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&u64::MAX).unwrap(), "18446744073709551615");
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        let s: String = from_str("\"hey \\u00e9\\n\"").unwrap();
        assert_eq!(s, "hey \u{e9}\n");
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.1, 1.0 / 3.0, 1e-12, 6.02e23, -0.0, 12.5, 3.0] {
            let json = to_string(&f).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} via {json}");
        }
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn integral_floats_stay_floats() {
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        let back: f64 = from_str("3.0").unwrap();
        assert_eq!(back, 3.0);
    }

    #[test]
    fn maps_round_trip_with_numeric_keys() {
        let mut m: BTreeMap<u32, f64> = BTreeMap::new();
        m.insert(3, 1.5);
        m.insert(1, 2.5);
        let json = to_string(&m).unwrap();
        assert_eq!(json, "{\"1\":2.5,\"3\":1.5}");
        let back: BTreeMap<u32, f64> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn nested_structures_round_trip() {
        let v: Vec<(u32, String, Option<f64>)> =
            vec![(1, "a".into(), Some(0.5)), (2, "b\"quoted\"".into(), None)];
        let json = to_string(&v).unwrap();
        let back: Vec<(u32, String, Option<f64>)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_is_indented_and_parseable() {
        let mut m: BTreeMap<String, Vec<u32>> = BTreeMap::new();
        m.insert("xs".into(), vec![1, 2]);
        let pretty = to_string_pretty(&m).unwrap();
        assert!(pretty.contains("\n  \"xs\": [\n    1,\n    2\n  ]"));
        let back: BTreeMap<String, Vec<u32>> = from_str(&pretty).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
