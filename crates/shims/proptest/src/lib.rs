//! Offline stand-in for the `proptest` crate.
//!
//! Runs each property as a fixed number of deterministic randomized cases
//! (seeded per test by the test's name, so failures reproduce across runs).
//! There is no shrinking: a failing case panics with the property's message
//! and the case number. The supported strategy surface is what this
//! workspace uses: numeric ranges, `proptest::bool::ANY`, tuples of
//! strategies, and `proptest::collection::vec`.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

pub mod strategy {
    //! The [`Strategy`] trait: how test inputs are generated.

    use rand_chacha::ChaCha8Rng;

    /// Generates values of `Value` from an RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut ChaCha8Rng) -> Self::Value;
    }

    impl<T: rand::SampleUniform> Strategy for std::ops::Range<T> {
        type Value = T;

        fn sample(&self, rng: &mut ChaCha8Rng) -> T {
            T::sample_half_open(rng, self.start, self.end)
        }
    }

    impl<T: rand::SampleUniform> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;

        fn sample(&self, rng: &mut ChaCha8Rng) -> T {
            T::sample_inclusive(rng, *self.start(), *self.end())
        }
    }

    /// A strategy that always yields clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut ChaCha8Rng) -> T {
            self.0.clone()
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut ChaCha8Rng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A: 0, B: 1);
    tuple_strategy!(A: 0, B: 1, C: 2);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

pub mod bool {
    //! Boolean strategies.

    use super::strategy::Strategy;
    use rand::RngCore;
    use rand_chacha::ChaCha8Rng;

    /// Uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The any-boolean strategy (upstream spells it `proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut ChaCha8Rng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::Rng;
    use rand_chacha::ChaCha8Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from `len` and whose
    /// elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Creates a [`VecStrategy`]; lengths are sampled from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut ChaCha8Rng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test-case plumbing: config and failure reporting.

    /// A failed or rejected test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Marks the current case as failed.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }

        /// Marks the current case as rejected (counted like a failure here;
        /// the vendored runner has no rejection budget).
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Runner configuration; only `cases` is meaningful here.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of randomized cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

pub mod prelude {
    //! Everything a property test module needs.

    pub use crate::bool;
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

pub use test_runner::Config as ProptestConfig;

/// Derives a stable per-test seed from the test path so failures reproduce.
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Creates the RNG for one property run.
pub fn runner_rng(name: &str) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed_for(name))
}

/// Asserts a condition inside a property, failing the case (not panicking
/// the process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "{}: `{:?}` != `{:?}`",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left != right,
            "assertion failed: both sides equal `{:?}`",
            left
        );
    }};
}

/// Skips the current case when an assumption does not hold. The vendored
/// runner simply treats the case as passing (no rejection budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic randomized cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Internal: expands one property fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::runner_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        { $body }
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __cfg.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_give_values_in_range(x in 0u32..10, f in -1.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respected(xs in collection::vec(1u32..=5, 2..7)) {
            prop_assert!((2..7).contains(&xs.len()));
            for x in xs {
                prop_assert!((1..=5).contains(&x));
            }
        }

        #[test]
        fn tuples_and_bools(pair in (0u16..100, bool::ANY), flag in bool::ANY) {
            prop_assert!(pair.0 < 100);
            let _ = (pair.1, flag);
        }
    }

    #[test]
    fn seeds_are_stable() {
        assert_eq!(crate::seed_for("a::b"), crate::seed_for("a::b"));
        assert_ne!(crate::seed_for("a::b"), crate::seed_for("a::c"));
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]

            #[allow(dead_code)]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
