//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a compact serde replacement sufficient for this project: a JSON-shaped
//! [`Value`] tree, [`Serialize`]/[`Deserialize`] traits defined over it,
//! and `#[derive(Serialize, Deserialize)]` macros (re-exported from the
//! sibling `serde_derive` shim). `serde_json` (also vendored) renders and
//! parses the tree.
//!
//! ## Data model
//!
//! * structs with named fields -> JSON objects (declaration order)
//! * one-field tuple structs (newtypes) -> their inner value
//! * multi-field tuple structs and tuples -> JSON arrays
//! * unit enum variants -> the variant name as a string
//! * maps -> JSON objects with stringified keys (numeric keys round-trip)
//! * `Option` -> value or `null`; absent struct fields deserialize to `None`
//!
//! The `#[serde(with = "module")]` field attribute is supported; the named
//! module must provide `to_value(&T) -> Value` and
//! `from_value(&Value) -> Result<T, DeError>`.

mod de;
mod ser;
mod value;

pub use de::{field, DeError, Deserialize};
pub use ser::Serialize;
pub use serde_derive::{Deserialize, Serialize};
pub use value::Value;
