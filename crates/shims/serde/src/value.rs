//! The JSON-shaped value tree all (de)serialization flows through.

/// A dynamically-typed JSON value.
///
/// Objects preserve insertion order so serialized output is deterministic
/// and matches struct declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (negative numbers and anything fitting `i64`).
    Int(i64),
    /// Unsigned integer (used for values above `i64::MAX`).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object: ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the object entries, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Borrows the array elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrows the string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view as `f64` (integers convert losslessly where possible).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Numeric view as `u64`, if non-negative and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            Value::UInt(u) => Some(*u),
            Value::Float(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// Numeric view as `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            Value::Float(f)
                if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 =>
            {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Looks up `key` in an object (linear scan; objects are small).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key))
            .map(|(_, v)| v)
    }

    /// One-word description of the value's type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}
