//! Deserialization from the [`Value`] tree.

use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::hash::{BuildHasher, Hash};
use std::rc::Rc;
use std::sync::Arc;

/// A deserialization error: what was expected and what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Builds an error from a message.
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }

    /// Builds an "expected X while reading Y, found Z" error.
    pub fn expected(what: &str, context: &str, found: &Value) -> Self {
        DeError(format!(
            "expected {what} while reading {context}, found {}",
            found.kind()
        ))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types reconstructible from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from the value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// The value to use when a struct field of this type is absent from the
    /// serialized object. `None` means "absence is an error"; `Option<T>`
    /// overrides this so missing fields read as `None`.
    fn missing() -> Option<Self> {
        None
    }
}

/// Looks up struct field `key` in `obj` and deserializes it, applying
/// [`Deserialize::missing`] when the key is absent. Used by derived impls.
pub fn field<T: Deserialize>(obj: &[(String, Value)], key: &str, ty: &str) -> Result<T, DeError> {
    match obj.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v),
        None => T::missing().ok_or_else(|| DeError::msg(format!("missing field `{key}` in {ty}"))),
    }
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| DeError::expected("integer", stringify!($t), v))?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::msg(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

de_int!(i8, i16, i32, i64, isize, u8, u16, u32);

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_u64()
            .ok_or_else(|| DeError::expected("unsigned integer", "u64", v))
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let n = u64::from_value(v)?;
        usize::try_from(n).map_err(|_| DeError::msg(format!("{n} out of range for usize")))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .ok_or_else(|| DeError::expected("number", "f64", v))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool()
            .ok_or_else(|| DeError::expected("bool", "bool", v))
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string", "String", v))
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| DeError::expected("string", "char", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::msg("expected a single-character string")),
        }
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing() -> Option<Self> {
        Some(None)
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Arc::new)
    }
}

impl<T: Deserialize> Deserialize for Rc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Rc::new)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array", "Vec", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array", "BTreeSet", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

/// Reinterprets an object key as a value a key type can deserialize from:
/// numeric-looking keys become integers first, falling back to the string.
fn key_value<K: Deserialize>(k: &str) -> Result<K, DeError> {
    if let Ok(i) = k.parse::<i64>() {
        if let Ok(key) = K::from_value(&Value::Int(i)) {
            return Ok(key);
        }
    }
    if let Ok(u) = k.parse::<u64>() {
        if let Ok(key) = K::from_value(&Value::UInt(u)) {
            return Ok(key);
        }
    }
    K::from_value(&Value::Str(k.to_string()))
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::expected("object", "BTreeMap", v))?
            .iter()
            .map(|(k, val)| Ok((key_value::<K>(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::expected("object", "HashMap", v))?
            .iter()
            .map(|(k, val)| Ok((key_value::<K>(k)?, V::from_value(val)?)))
            .collect()
    }
}

macro_rules! de_tuple {
    ($len:literal; $($name:ident : $idx:tt),+) => {
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let arr = v
                    .as_array()
                    .ok_or_else(|| DeError::expected("array", "tuple", v))?;
                if arr.len() != $len {
                    return Err(DeError::msg(format!(
                        "expected a {}-element array, found {} elements",
                        $len,
                        arr.len()
                    )));
                }
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    };
}

de_tuple!(1; A: 0);
de_tuple!(2; A: 0, B: 1);
de_tuple!(3; A: 0, B: 1, C: 2);
de_tuple!(4; A: 0, B: 1, C: 2, D: 3);
de_tuple!(5; A: 0, B: 1, C: 2, D: 3, E: 4);
de_tuple!(6; A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
