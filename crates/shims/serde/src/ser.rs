//! Serialization into the [`Value`] tree.

use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::rc::Rc;
use std::sync::Arc;

/// Types convertible into a JSON [`Value`].
pub trait Serialize {
    /// Builds the value-tree representation of `self`.
    fn to_value(&self) -> Value;

    /// Renders `self` as a map key. Only meaningfully implemented for
    /// types whose value form is a string or an integer.
    fn to_key(&self) -> String {
        match self.to_value() {
            Value::Str(s) => s,
            Value::Int(i) => i.to_string(),
            Value::UInt(u) => u.to_string(),
            Value::Bool(b) => b.to_string(),
            other => panic!("unsupported map key type: {}", other.kind()),
        }
    }
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

ser_int!(i8, i16, i32, i64, isize, u8, u16, u32);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        if *self <= i64::MAX as u64 {
            Value::Int(*self as i64)
        } else {
            Value::UInt(*self)
        }
    }
}

impl Serialize for usize {
    fn to_value(&self) -> Value {
        (*self as u64).to_value()
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }

    fn to_key(&self) -> String {
        (**self).to_key()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

macro_rules! ser_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    };
}

ser_tuple!(A: 0);
ser_tuple!(A: 0, B: 1);
ser_tuple!(A: 0, B: 1, C: 2);
ser_tuple!(A: 0, B: 1, C: 2, D: 3);
ser_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
ser_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
