//! Offline vendored `#[derive(Serialize, Deserialize)]` for the serde shim.
//!
//! Implemented directly over `proc_macro` token trees (the environment has
//! no syn/quote). Supports the shapes this workspace actually uses:
//!
//! * structs with named fields (objects, declaration order)
//! * tuple structs — one field serializes as a newtype (inner value),
//!   several fields as an array
//! * enums whose variants are all unit variants (variant-name strings)
//! * the `#[serde(with = "module")]` field attribute: the module must
//!   provide `to_value(&T) -> Value` and `from_value(&Value) -> Result<T>`
//!
//! Anything else (generics, lifetimes, data-carrying enum variants) is a
//! compile error pointing here, so unsupported shapes fail fast instead of
//! serializing wrongly.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named struct field.
struct Field {
    name: String,
    /// Module path from `#[serde(with = "path")]`, if present.
    with: Option<String>,
}

/// The item shapes the derives understand.
enum Shape {
    Named { name: String, fields: Vec<Field> },
    Tuple { name: String, arity: usize },
    UnitEnum { name: String, variants: Vec<String> },
}

/// Extracts `with = "path"` from a `#[serde(...)]` attribute group, if the
/// bracket group at `tokens[idx]` is one.
fn serde_with_of_attr(group: &proc_macro::Group) -> Option<String> {
    let inner: Vec<TokenTree> = group.stream().into_iter().collect();
    match inner.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let args = match inner.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return None,
    };
    let args: Vec<TokenTree> = args.into_iter().collect();
    let mut i = 0;
    while i < args.len() {
        if let TokenTree::Ident(id) = &args[i] {
            if id.to_string() == "with" {
                if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                    (args.get(i + 1), args.get(i + 2))
                {
                    if eq.as_char() == '=' {
                        let s = lit.to_string();
                        return Some(s.trim_matches('"').to_string());
                    }
                }
            }
        }
        i += 1;
    }
    None
}

/// Skips an attribute (`#` + bracket group) at `i`, returning the new index
/// and any `serde(with = ...)` path found.
fn skip_attr(tokens: &[TokenTree], i: usize) -> (usize, Option<String>) {
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '#' {
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                if g.delimiter() == Delimiter::Bracket {
                    return (i + 2, serde_with_of_attr(g));
                }
            }
        }
    }
    (i, None)
}

/// Skips a visibility modifier (`pub`, `pub(crate)`, ...) at `i`.
fn skip_vis(tokens: &[TokenTree], i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                if g.delimiter() == Delimiter::Parenthesis {
                    return i + 2;
                }
            }
            return i + 1;
        }
    }
    i
}

/// Parses the fields of a brace-delimited (named-field) struct body.
fn parse_named_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut with = None;
        loop {
            let (next, w) = skip_attr(&tokens, i);
            if next == i {
                break;
            }
            if w.is_some() {
                with = w;
            }
            i = next;
        }
        i = skip_vis(&tokens, i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, with });
    }
    Ok(fields)
}

/// Counts the fields of a parenthesized (tuple) struct body.
fn parse_tuple_arity(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 1;
    let mut depth = 0i32;
    let mut trailing = false;
    for (idx, t) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    if idx + 1 == tokens.len() {
                        trailing = true;
                    } else {
                        arity += 1;
                    }
                }
                _ => {}
            }
        }
    }
    let _ = trailing;
    arity
}

/// Parses the variants of an enum body; all must be unit variants.
fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        loop {
            let (next, _) = skip_attr(&tokens, i);
            if next == i {
                break;
            }
            i = next;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        if let Some(TokenTree::Group(_)) = tokens.get(i) {
            return Err(format!(
                "variant `{name}` carries data; the vendored serde derive only supports unit variants"
            ));
        }
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            other => {
                return Err(format!(
                    "expected `,` after variant `{name}`, found {other:?}"
                ))
            }
        }
        variants.push(name);
    }
    Ok(variants)
}

/// Parses the derive input item into one of the supported shapes.
fn parse_item(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                let (next, _) = skip_attr(&tokens, i);
                i = next;
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    i += 1;
                    break s;
                }
                if s != "pub" {
                    return Err(format!("unsupported item modifier `{s}`"));
                }
                i = skip_vis(&tokens, i);
            }
            other => return Err(format!("unexpected token before item keyword: {other:?}")),
        }
    };
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "`{name}` is generic; the vendored serde derive does not support generics"
            ));
        }
    }
    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if kind == "struct" {
                Ok(Shape::Named {
                    name,
                    fields: parse_named_fields(g.stream())?,
                })
            } else {
                Ok(Shape::UnitEnum {
                    name,
                    variants: parse_unit_variants(g.stream())?,
                })
            }
        }
        Some(TokenTree::Group(g))
            if g.delimiter() == Delimiter::Parenthesis && kind == "struct" =>
        {
            Ok(Shape::Tuple {
                name,
                arity: parse_tuple_arity(g.stream()),
            })
        }
        other => Err(format!("unsupported item body for `{name}`: {other:?}")),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Derives `serde::Serialize` (the vendored, value-tree flavor).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_item(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Named { name, fields } => {
            let mut pushes = String::new();
            for f in &fields {
                let expr = match &f.with {
                    Some(path) => format!("{path}::to_value(&self.{})", f.name),
                    None => format!("::serde::Serialize::to_value(&self.{})", f.name),
                };
                pushes.push_str(&format!(
                    "(::std::string::String::from(\"{}\"), {expr}),",
                    f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec![{pushes}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Tuple { name, arity } => {
            let body = if arity == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(::std::vec![{}])", items.join(","))
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Shape::UnitEnum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\"))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join(",")
            )
        }
    };
    code.parse().unwrap()
}

/// Derives `serde::Deserialize` (the vendored, value-tree flavor).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_item(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Named { name, fields } => {
            let mut inits = String::new();
            for f in &fields {
                let expr = match &f.with {
                    Some(path) => format!(
                        "match v.get(\"{0}\") {{\n\
                             ::std::option::Option::Some(x) => {path}::from_value(x)?,\n\
                             ::std::option::Option::None => return ::std::result::Result::Err(\n\
                                 ::serde::DeError::msg(\"missing field `{0}` in {name}\")),\n\
                         }}",
                        f.name
                    ),
                    None => format!("::serde::field(obj, \"{}\", \"{name}\")?", f.name),
                };
                inits.push_str(&format!("{}: {expr},\n", f.name));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let obj = v.as_object().ok_or_else(||\n\
                             ::serde::DeError::expected(\"object\", \"{name}\", v))?;\n\
                         let _ = &obj;\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Tuple { name, arity } => {
            let body = if arity == 1 {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
            } else {
                let items: Vec<String> = (0..arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                    .collect();
                format!(
                    "let arr = v.as_array().ok_or_else(||\n\
                         ::serde::DeError::expected(\"array\", \"{name}\", v))?;\n\
                     if arr.len() != {arity} {{\n\
                         return ::std::result::Result::Err(::serde::DeError::msg(\n\
                             \"wrong tuple-struct arity for {name}\"));\n\
                     }}\n\
                     ::std::result::Result::Ok({name}({}))",
                    items.join(",")
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitEnum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v})"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let s = v.as_str().ok_or_else(||\n\
                             ::serde::DeError::expected(\"string\", \"{name}\", v))?;\n\
                         match s {{\n\
                             {},\n\
                             other => ::std::result::Result::Err(::serde::DeError::msg(\n\
                                 ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    };
    code.parse().unwrap()
}
