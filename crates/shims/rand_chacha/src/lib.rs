//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements a genuine ChaCha stream cipher with 8 double-rounds as the
//! keystream source behind [`ChaCha8Rng`]. The simulator only needs
//! determinism and decent equidistribution, both of which ChaCha provides
//! by construction; the word-consumption order is fixed (one 16-word block
//! at a time, low word first) so seeded streams are stable across runs and
//! platforms.

use rand::{RngCore, SeedableRng};

/// A deterministic ChaCha8-based random number generator.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key words (seed), little-endian.
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Buffered keystream block.
    block: [u32; 16],
    /// Next unread word index in `block`; 16 means exhausted.
    index: usize,
}

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        // 8 rounds = 4 double-rounds (column + diagonal).
        for _ in 0..4 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, k) in key.iter_mut().enumerate() {
            *k = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_floats_cover_unit_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&x));
            lo |= x < 0.25;
            hi |= x > 0.75;
        }
        assert!(lo && hi, "draws did not spread across the interval");
    }
}
