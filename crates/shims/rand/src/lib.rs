//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of the `rand 0.8` API the project actually uses:
//! [`RngCore`], [`SeedableRng`] (including the PCG-based `seed_from_u64`
//! seed expansion that `rand_core 0.6` ships, so seeds produce the same
//! streams as upstream), and [`Rng::gen_range`] over integer and float
//! ranges.
//!
//! Determinism is the only hard requirement for the simulator: all
//! randomness flows from explicit seeds and two runs with the same seed
//! must produce identical results. Statistical quality matches upstream
//! closely enough for workload generation (Lemire-style widening-multiply
//! for integers, 53-bit mantissa conversion for doubles).

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of random words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let word = self.next_u64().to_le_bytes();
            let n = (dest.len() - i).min(8);
            dest[i..i + n].copy_from_slice(&word[..n]);
            i += n;
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed type, typically a byte array.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed and instantiates the generator.
    ///
    /// Uses the same PCG-based expansion as `rand_core 0.6`, so
    /// `seed_from_u64(s)` here yields the same generator state as upstream.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            let bytes = x.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be drawn uniformly from a range by an RNG.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Draws uniformly from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;

    /// Draws uniformly from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as u64).wrapping_sub(low as u64);
                low.wrapping_add(sample_u64_below(rng, span) as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as u64).wrapping_sub(low as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(sample_u64_below(rng, span) as $t)
            }
        }
    )*};
}

uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as $u).wrapping_sub(low as $u) as u64;
                low.wrapping_add(sample_u64_below(rng, span) as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = ((high as $u).wrapping_sub(low as $u) as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(sample_u64_below(rng, span) as $t)
            }
        }
    )*};
}

uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Unbiased uniform draw from `[0, span)` (`span > 0`) via widening
/// multiply with rejection (Lemire's method).
fn sample_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = span.wrapping_neg() % span; // number of biased low outcomes
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= zone {
            return (m >> 64) as u64;
        }
    }
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + unit * (high - low)
    }

    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        low + unit * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_half_open(rng, low as f64, high as f64) as f32
    }

    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_inclusive(rng, low as f64, high as f64) as f32
    }
}

/// A range that can be sampled from (the `rand 0.8` `SampleRange` shape).
pub trait SampleRange<T> {
    /// Draws one value uniformly from this range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Convenience methods layered on any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        f64::sample_half_open(self, 0.0, 1.0) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(0..13);
            assert!(x < 13);
            let y: u32 = rng.gen_range(5..=9);
            assert!((5..=9).contains(&y));
            let f: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let n: i64 = rng.gen_range(-10i64..10);
            assert!((-10..10).contains(&n));
        }
    }

    #[test]
    fn seed_expansion_is_deterministic() {
        struct Capture([u8; 32]);
        impl SeedableRng for Capture {
            type Seed = [u8; 32];
            fn from_seed(seed: Self::Seed) -> Self {
                Capture(seed)
            }
        }
        let a = Capture::seed_from_u64(42).0;
        let b = Capture::seed_from_u64(42).0;
        assert_eq!(a, b);
        assert_ne!(a, Capture::seed_from_u64(43).0);
    }
}
