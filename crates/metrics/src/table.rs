//! Minimal ASCII table rendering for experiment output.
//!
//! Every experiment binary prints the rows the corresponding paper table or
//! figure would contain; this keeps the output format uniform and diffable.

use std::fmt::Write as _;

/// A simple left-padded ASCII table.
///
/// # Examples
///
/// ```
/// use gfair_metrics::Table;
///
/// let mut t = Table::new(vec!["model", "K80", "V100"]);
/// t.row(vec!["VAE".into(), "1.00".into(), "1.22".into()]);
/// let s = t.render();
/// assert!(s.contains("model"));
/// assert!(s.contains("VAE"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `header` is empty.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        let header: Vec<String> = header.into_iter().map(Into::into).collect();
        assert!(!header.is_empty(), "table needs at least one column");
        Table {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row's arity differs from the header's.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
    }

    /// Convenience: appends a row of displayable cells.
    pub fn row_of<D: std::fmt::Display>(&mut self, cells: Vec<D>) {
        self.row(cells.into_iter().map(|c| c.to_string()).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns true if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a separator line under the header.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<w$}", cell, w = widths[i]);
                if i + 1 < ncols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Formats a float with 2 decimal places (the workhorse cell format).
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float as a percentage with 1 decimal place.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        // All lines equal width (modulo trailing pad of last cell).
        assert!(lines[0].starts_with("a     "));
        assert!(lines[2].starts_with("xxxxxx"));
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    fn row_of_accepts_display_types() {
        let mut t = Table::new(vec!["n", "v"]);
        t.row_of(vec![1.5, 2.0]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!(t.render().contains("1.5"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(vec!["only"]);
        t.row(vec!["a".into(), "b".into()]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_header_panics() {
        let _ = Table::new(Vec::<String>::new());
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(pct(0.857), "85.7%");
    }
}
