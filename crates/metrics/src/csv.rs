//! CSV rendering of report time series and JCT distributions.
//!
//! The experiment binaries print ASCII tables; for plotting the paper-style
//! figures externally, these helpers render the same data as CSV (no
//! dependency — the format here is plain comma-separation with a header,
//! and all values are numeric or simple identifiers that never need
//! quoting).

use gfair_sim::SimReport;
use gfair_types::UserId;
use std::fmt::Write as _;

/// Renders the per-window user-share time series as CSV:
/// `start_secs,user,gpu_secs,share,utilization`.
///
/// One row per (window, user) pair, windows in time order, users in id
/// order. Windows where nothing ran produce rows with zero shares.
pub fn share_timeseries_csv(report: &SimReport, users: &[UserId]) -> String {
    let mut out = String::from("start_secs,user,gpu_secs,share,utilization\n");
    for w in &report.timeseries {
        let total: f64 = w.user_gpu_secs.values().sum();
        for &u in users {
            let mine = w.user_gpu_secs.get(&u).copied().unwrap_or(0.0);
            let share = if total > 0.0 { mine / total } else { 0.0 };
            let _ = writeln!(
                out,
                "{},{},{:.3},{:.6},{:.6}",
                w.start.as_secs(),
                u.raw(),
                mine,
                share,
                w.utilization()
            );
        }
    }
    out
}

/// Renders per-job completion records as CSV:
/// `job,user,model,gang,service_secs,arrival_secs,finish_secs,jct_secs,slowdown,migrations`.
///
/// Unfinished jobs have empty `finish_secs`/`jct_secs`/`slowdown` cells.
pub fn jobs_csv(report: &SimReport) -> String {
    let mut out = String::from(
        "job,user,model,gang,service_secs,arrival_secs,finish_secs,jct_secs,slowdown,migrations\n",
    );
    for j in report.jobs.values() {
        let (finish, jct, slowdown) = match j.finish {
            Some(f) => {
                let jct = j.jct().expect("finished").as_secs_f64();
                (
                    f.as_secs().to_string(),
                    format!("{jct:.1}"),
                    format!("{:.3}", jct / j.service_secs),
                )
            }
            None => (String::new(), String::new(), String::new()),
        };
        let _ = writeln!(
            out,
            "{},{},{},{},{:.1},{},{},{},{},{}",
            j.id.raw(),
            j.user.raw(),
            j.model,
            j.gang,
            j.service_secs,
            j.arrival.as_secs(),
            finish,
            jct,
            slowdown,
            j.migrations
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfair_sim::{JobRecord, WindowSample};
    use gfair_types::{GenId, JobId, SimDuration, SimTime};
    use std::collections::BTreeMap;

    fn report() -> SimReport {
        let window = WindowSample {
            start: SimTime::from_secs(300),
            user_gpu_secs: BTreeMap::from([(UserId::new(0), 30.0), (UserId::new(1), 70.0)]),
            user_base_secs: BTreeMap::new(),
            used_gpu_secs: 100.0,
            capacity_gpu_secs: 200.0,
        };
        let job = JobRecord {
            id: JobId::new(3),
            user: UserId::new(1),
            model: "VAE".into(),
            gang: 2,
            service_secs: 100.0,
            arrival: SimTime::from_secs(10),
            first_run: Some(SimTime::from_secs(10)),
            finish: Some(SimTime::from_secs(210)),
            gpu_secs_by_gen: BTreeMap::from([(GenId::new(0), 400.0)]),
            migrations: 1,
        };
        let unfinished = JobRecord {
            id: JobId::new(4),
            user: UserId::new(0),
            model: "GRU".into(),
            gang: 1,
            service_secs: 100.0,
            arrival: SimTime::from_secs(20),
            first_run: None,
            finish: None,
            gpu_secs_by_gen: BTreeMap::new(),
            migrations: 0,
        };
        SimReport {
            scheduler: "t".into(),
            end: SimTime::from_secs(600),
            rounds: 10,
            jobs: BTreeMap::from([(job.id, job), (unfinished.id, unfinished)]),
            user_gpu_secs: BTreeMap::new(),
            user_base_secs: BTreeMap::new(),
            user_gen_gpu_secs: BTreeMap::new(),
            server_gpu_secs: BTreeMap::new(),
            timeseries: vec![window],
            migrations: 1,
            migration_outage: SimDuration::ZERO,
            gpu_secs_used: 100.0,
            gpu_secs_capacity: 200.0,
            profile_reports: 0,
            stale_migrations: 0,
            migration_failures: 0,
            obs: None,
        }
    }

    #[test]
    fn share_csv_has_one_row_per_window_user() {
        let csv = share_timeseries_csv(&report(), &[UserId::new(0), UserId::new(1)]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 users x 1 window
        assert_eq!(lines[0], "start_secs,user,gpu_secs,share,utilization");
        assert!(lines[1].starts_with("300,0,30.000,0.300000"));
        assert!(lines[2].starts_with("300,1,70.000,0.700000"));
    }

    #[test]
    fn share_csv_absent_user_is_zero() {
        let csv = share_timeseries_csv(&report(), &[UserId::new(9)]);
        assert!(csv.lines().nth(1).unwrap().contains(",9,0.000,0.000000"));
    }

    #[test]
    fn jobs_csv_rows_and_empty_cells() {
        let csv = jobs_csv(&report());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        // Finished job: jct = 200 s, slowdown 2.0.
        assert_eq!(lines[1], "3,1,VAE,2,100.0,10,210,200.0,2.000,1");
        // Unfinished: empty finish/jct/slowdown cells.
        assert_eq!(lines[2], "4,0,GRU,1,100.0,20,,,,0");
    }
}
