//! Job-completion-time statistics.
//!
//! The efficiency experiments compare schedulers on mean/percentile JCT and
//! makespan, like the paper's macro evaluation.

use gfair_sim::SimReport;
use gfair_types::SimDuration;

/// Summary statistics over a set of job completion times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JctStats {
    /// Number of completed jobs.
    pub count: usize,
    /// Mean JCT in seconds.
    pub mean_secs: f64,
    /// Median (p50) JCT in seconds.
    pub p50_secs: f64,
    /// 95th-percentile JCT in seconds.
    pub p95_secs: f64,
    /// 99th-percentile JCT in seconds.
    pub p99_secs: f64,
    /// Maximum JCT in seconds.
    pub max_secs: f64,
}

impl JctStats {
    /// Computes statistics from a set of completion times.
    ///
    /// Returns `None` for an empty input.
    pub fn from_durations(jcts: &[SimDuration]) -> Option<Self> {
        if jcts.is_empty() {
            return None;
        }
        let mut secs: Vec<f64> = jcts.iter().map(|d| d.as_secs_f64()).collect();
        secs.sort_by(f64::total_cmp);
        let mean = secs.iter().sum::<f64>() / secs.len() as f64;
        Some(JctStats {
            count: secs.len(),
            mean_secs: mean,
            p50_secs: percentile(&secs, 0.50),
            p95_secs: percentile(&secs, 0.95),
            p99_secs: percentile(&secs, 0.99),
            max_secs: *secs.last().expect("non-empty"),
        })
    }

    /// Ratio of this mean JCT to another's (how much slower `self` is).
    pub fn mean_ratio_to(&self, other: &JctStats) -> f64 {
        if other.mean_secs <= 0.0 {
            f64::INFINITY
        } else {
            self.mean_secs / other.mean_secs
        }
    }
}

/// Per-job *slowdown*: JCT divided by the job's exclusive runtime on the
/// base generation (`service_secs`). A slowdown of 1.0 means the job ran as
/// if it had a dedicated base-generation gang from arrival; values below
/// 1.0 mean it ran mostly on faster generations. This is the finish-time
/// fairness signal used to compare schedulers on shared clusters.
///
/// Only finished jobs contribute; returns one entry per finished job in id
/// order.
pub fn slowdowns(report: &SimReport) -> Vec<f64> {
    report
        .jobs
        .values()
        .filter_map(|j| {
            let jct = j.jct()?;
            Some(jct.as_secs_f64() / j.service_secs)
        })
        .collect()
}

/// Mean slowdown across finished jobs (see [`slowdowns`]); `None` when no
/// job finished.
pub fn mean_slowdown(report: &SimReport) -> Option<f64> {
    let s = slowdowns(report);
    if s.is_empty() {
        None
    } else {
        Some(s.iter().sum::<f64>() / s.len() as f64)
    }
}

/// Nearest-rank percentile of an ascending-sorted slice.
///
/// `q` in `[0, 1]`. The slice must be non-empty and sorted.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = (q * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfair_sim::JobRecord;
    use gfair_types::{GenId, JobId, SimTime, UserId};
    use std::collections::BTreeMap;

    fn record(id: u32, service: f64, jct_secs: Option<u64>) -> (JobId, JobRecord) {
        (
            JobId::new(id),
            JobRecord {
                id: JobId::new(id),
                user: UserId::new(0),
                model: "m".into(),
                gang: 1,
                service_secs: service,
                arrival: SimTime::ZERO,
                first_run: jct_secs.map(|_| SimTime::ZERO),
                finish: jct_secs.map(SimTime::from_secs),
                gpu_secs_by_gen: BTreeMap::from([(GenId::new(0), service)]),
                migrations: 0,
            },
        )
    }

    fn report_with(jobs: Vec<(JobId, JobRecord)>) -> SimReport {
        SimReport {
            scheduler: "t".into(),
            end: SimTime::from_secs(1000),
            rounds: 0,
            jobs: jobs.into_iter().collect(),
            user_gpu_secs: BTreeMap::new(),
            user_base_secs: BTreeMap::new(),
            user_gen_gpu_secs: BTreeMap::new(),
            server_gpu_secs: BTreeMap::new(),
            timeseries: Vec::new(),
            migrations: 0,
            migration_outage: SimDuration::ZERO,
            gpu_secs_used: 0.0,
            gpu_secs_capacity: 0.0,
            profile_reports: 0,
            stale_migrations: 0,
            migration_failures: 0,
            obs: None,
        }
    }

    #[test]
    fn slowdown_is_jct_over_service() {
        let r = report_with(vec![record(0, 100.0, Some(300)), record(1, 50.0, Some(50))]);
        let s = slowdowns(&r);
        assert_eq!(s, vec![3.0, 1.0]);
        assert!((mean_slowdown(&r).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn unfinished_jobs_do_not_contribute_slowdown() {
        let r = report_with(vec![record(0, 100.0, None)]);
        assert!(slowdowns(&r).is_empty());
        assert!(mean_slowdown(&r).is_none());
    }

    fn secs(v: &[u64]) -> Vec<SimDuration> {
        v.iter().map(|&s| SimDuration::from_secs(s)).collect()
    }

    #[test]
    fn empty_input_gives_none() {
        assert!(JctStats::from_durations(&[]).is_none());
    }

    #[test]
    fn single_value_stats() {
        let s = JctStats::from_durations(&secs(&[100])).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean_secs, 100.0);
        assert_eq!(s.p50_secs, 100.0);
        assert_eq!(s.p99_secs, 100.0);
        assert_eq!(s.max_secs, 100.0);
    }

    #[test]
    fn mean_and_percentiles() {
        let v: Vec<u64> = (1..=100).collect();
        let s = JctStats::from_durations(&secs(&v)).unwrap();
        assert_eq!(s.count, 100);
        assert!((s.mean_secs - 50.5).abs() < 1e-9);
        assert!((s.p50_secs - 50.0).abs() <= 1.0);
        assert!((s.p95_secs - 95.0).abs() <= 1.0);
        assert!((s.p99_secs - 99.0).abs() <= 1.0);
        assert_eq!(s.max_secs, 100.0);
    }

    #[test]
    fn percentiles_are_order_independent() {
        let a = JctStats::from_durations(&secs(&[30, 10, 20])).unwrap();
        let b = JctStats::from_durations(&secs(&[10, 20, 30])).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn mean_ratio() {
        let a = JctStats::from_durations(&secs(&[200])).unwrap();
        let b = JctStats::from_durations(&secs(&[100])).unwrap();
        assert!((a.mean_ratio_to(&b) - 2.0).abs() < 1e-12);
        assert!((b.mean_ratio_to(&a) - 0.5).abs() < 1e-12);
    }
}
