//! Fairness indices and ideal-share computation.
//!
//! Fairness in Gandiva_fair is judged on *entitlement-normalized service*:
//! each user's received GPU time divided by what their tickets entitle them
//! to. A perfectly fair scheduler gives every active user the same
//! normalized service, yielding a Jain index of 1.0 and a max-min ratio of
//! 1.0.
//!
//! Because a user cannot consume more GPUs than their jobs' total gang width,
//! the proper ideal is *weighted water-filling* (capped max-min): shares are
//! ticket-proportional, any share above a user's cap is redistributed to the
//! others. [`water_filling`] computes that ideal.

/// Jain's fairness index of a set of non-negative values.
///
/// `(sum x)^2 / (n * sum x^2)`; 1.0 means perfectly equal, `1/n` means one
/// value holds everything. Returns 1.0 for empty or all-zero input (nothing
/// is unfair about nothing).
///
/// # Examples
///
/// ```
/// use gfair_metrics::jain_index;
///
/// assert_eq!(jain_index(&[1.0, 1.0, 1.0]), 1.0);
/// assert!((jain_index(&[1.0, 0.0]) - 0.5).abs() < 1e-12);
/// ```
pub fn jain_index(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let sum_sq: f64 = values.iter().map(|v| v * v).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (values.len() as f64 * sum_sq)
}

/// Gini coefficient of a set of non-negative values.
///
/// 0.0 means perfectly equal, approaching 1.0 means one value holds
/// everything. Returns 0.0 for inputs with fewer than two values or a
/// non-positive sum (nothing is unequal about nothing).
///
/// # Examples
///
/// ```
/// use gfair_metrics::gini;
///
/// assert_eq!(gini(&[5.0, 5.0, 5.0]), 0.0);
/// assert!((gini(&[1.0, 0.0]) - 0.5).abs() < 1e-12);
/// ```
pub fn gini(values: &[f64]) -> f64 {
    let n = values.len();
    if n < 2 {
        return 0.0;
    }
    let sum: f64 = values.iter().sum();
    if sum <= 0.0 {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let nf = n as f64;
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, v)| (i as f64 + 1.0) * v)
        .sum();
    (2.0 * weighted) / (nf * sum) - (nf + 1.0) / nf
}

/// Ratio of the minimum to the maximum value (1.0 = perfectly balanced,
/// 0.0 = someone got nothing). Returns 1.0 for empty input.
pub fn max_min_ratio(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if max <= 0.0 {
        1.0
    } else {
        (min / max).max(0.0)
    }
}

/// Divides each received amount by its entitlement, yielding the normalized
/// service vector fairness indices are computed over.
///
/// Entries with zero entitlement are skipped (an entitled share of zero
/// cannot be violated).
///
/// # Panics
///
/// Panics if the two slices have different lengths.
pub fn normalized_shares(received: &[f64], entitled: &[f64]) -> Vec<f64> {
    assert_eq!(
        received.len(),
        entitled.len(),
        "received and entitled must align"
    );
    received
        .iter()
        .zip(entitled)
        .filter(|(_, &e)| e > 0.0)
        .map(|(&r, &e)| r / e)
        .collect()
}

/// Weighted water-filling: distributes `capacity` among clients with the
/// given `weights`, capping each client at its `caps` value and
/// redistributing surplus proportionally to the remaining weights.
///
/// This is the capped max-min ideal: the allocation a perfectly fair,
/// work-conserving scheduler would produce when client `i` can consume at
/// most `caps[i]`.
///
/// Returns the per-client allocation. Total allocated equals
/// `min(capacity, sum of caps over positively-weighted clients)`.
///
/// # Panics
///
/// Panics if the slices differ in length or any weight or cap is negative.
///
/// # Examples
///
/// ```
/// use gfair_metrics::water_filling;
///
/// // Two equal-weight users; the first can only use 1 GPU.
/// let alloc = water_filling(4.0, &[1.0, 1.0], &[1.0, 8.0]);
/// assert_eq!(alloc, vec![1.0, 3.0]);
/// ```
pub fn water_filling(capacity: f64, weights: &[f64], caps: &[f64]) -> Vec<f64> {
    assert_eq!(weights.len(), caps.len(), "weights and caps must align");
    assert!(
        weights.iter().all(|&w| w >= 0.0) && caps.iter().all(|&c| c >= 0.0),
        "weights and caps must be non-negative"
    );
    let n = weights.len();
    let mut alloc = vec![0.0; n];
    if n == 0 || capacity <= 0.0 {
        return alloc;
    }
    let mut open: Vec<usize> = (0..n)
        .filter(|&i| caps[i] > 0.0 && weights[i] > 0.0)
        .collect();
    let fillable: f64 = open.iter().map(|&i| caps[i]).sum();
    let mut remaining = capacity.min(fillable);
    // Iteratively fill: give each open client its weight share; clients that
    // hit their cap close and their surplus is re-divided. Terminates in at
    // most n iterations because each pass closes at least one client (or
    // nobody hits a cap and we finish).
    while remaining > 1e-12 && !open.is_empty() {
        let total_w: f64 = open.iter().map(|&i| weights[i]).sum();
        debug_assert!(total_w > 0.0, "open clients always hold weight");
        let mut closed_any = false;
        let mut consumed = 0.0;
        for &i in &open {
            let fair = remaining * weights[i] / total_w;
            let headroom = caps[i] - alloc[i];
            if fair >= headroom - 1e-12 {
                alloc[i] += headroom;
                consumed += headroom;
                closed_any = true;
            }
        }
        if closed_any {
            open.retain(|&i| caps[i] - alloc[i] > 1e-12);
            remaining -= consumed;
        } else {
            for &i in &open {
                alloc[i] += remaining * weights[i] / total_w;
            }
            remaining = 0.0;
        }
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_of_equal_values_is_one() {
        assert!((jain_index(&[5.0, 5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jain_of_monopoly_is_one_over_n() {
        let j = jain_index(&[10.0, 0.0, 0.0, 0.0]);
        assert!((j - 0.25).abs() < 1e-12);
    }

    #[test]
    fn jain_degenerate_inputs() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert_eq!(jain_index(&[3.0]), 1.0);
    }

    #[test]
    fn gini_known_values() {
        assert_eq!(gini(&[5.0, 5.0, 5.0]), 0.0);
        // Monopoly among n users: (n - 1) / n.
        assert!((gini(&[0.0, 0.0, 0.0, 12.0]) - 0.75).abs() < 1e-12);
        // Order-independent.
        assert!((gini(&[1.0, 2.0, 3.0]) - gini(&[3.0, 1.0, 2.0])).abs() < 1e-12);
    }

    #[test]
    fn gini_degenerate_inputs() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[7.0]), 0.0);
        assert_eq!(gini(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn max_min_basic() {
        assert!((max_min_ratio(&[1.0, 2.0, 4.0]) - 0.25).abs() < 1e-12);
        assert_eq!(max_min_ratio(&[2.0, 2.0]), 1.0);
        assert_eq!(max_min_ratio(&[]), 1.0);
        assert_eq!(max_min_ratio(&[0.0, 0.0]), 1.0);
        assert_eq!(max_min_ratio(&[0.0, 1.0]), 0.0);
    }

    #[test]
    fn normalized_shares_divides_by_entitlement() {
        let norm = normalized_shares(&[50.0, 100.0], &[100.0, 100.0]);
        assert_eq!(norm, vec![0.5, 1.0]);
    }

    #[test]
    fn normalized_shares_skips_zero_entitlement() {
        let norm = normalized_shares(&[50.0, 10.0], &[100.0, 0.0]);
        assert_eq!(norm, vec![0.5]);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn normalized_shares_length_mismatch_panics() {
        let _ = normalized_shares(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn water_filling_uncapped_is_proportional() {
        let alloc = water_filling(12.0, &[1.0, 2.0, 3.0], &[100.0, 100.0, 100.0]);
        assert!((alloc[0] - 2.0).abs() < 1e-9);
        assert!((alloc[1] - 4.0).abs() < 1e-9);
        assert!((alloc[2] - 6.0).abs() < 1e-9);
    }

    #[test]
    fn water_filling_redistributes_capped_surplus() {
        let alloc = water_filling(4.0, &[1.0, 1.0], &[1.0, 8.0]);
        assert_eq!(alloc, vec![1.0, 3.0]);
    }

    #[test]
    fn water_filling_cascading_caps() {
        // Equal weights, caps 1, 2, 100 with capacity 9: first two cap out,
        // the third takes the rest.
        let alloc = water_filling(9.0, &[1.0, 1.0, 1.0], &[1.0, 2.0, 100.0]);
        assert!((alloc[0] - 1.0).abs() < 1e-9);
        assert!((alloc[1] - 2.0).abs() < 1e-9);
        assert!((alloc[2] - 6.0).abs() < 1e-9);
    }

    #[test]
    fn water_filling_respects_total_caps() {
        let alloc = water_filling(100.0, &[1.0, 1.0], &[2.0, 3.0]);
        assert_eq!(alloc, vec![2.0, 3.0]);
    }

    #[test]
    fn water_filling_zero_capacity() {
        assert_eq!(water_filling(0.0, &[1.0], &[5.0]), vec![0.0]);
        assert_eq!(water_filling(5.0, &[], &[]), Vec::<f64>::new());
    }

    #[test]
    fn water_filling_zero_weight_client_gets_nothing() {
        let alloc = water_filling(4.0, &[0.0, 1.0], &[5.0, 5.0]);
        assert_eq!(alloc[0], 0.0);
        assert!((alloc[1] - 4.0).abs() < 1e-9);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Water-filling conserves capacity: total allocated equals
        /// min(capacity, total caps), and no client exceeds its cap.
        #[test]
        fn water_filling_conserves_and_caps(
            capacity in 0.0f64..100.0,
            rows in proptest::collection::vec((0.1f64..10.0, 0.0f64..20.0), 1..8),
        ) {
            let weights: Vec<f64> = rows.iter().map(|r| r.0).collect();
            let caps: Vec<f64> = rows.iter().map(|r| r.1).collect();
            let alloc = water_filling(capacity, &weights, &caps);
            let total: f64 = alloc.iter().sum();
            let expect = capacity.min(caps.iter().sum());
            prop_assert!((total - expect).abs() < 1e-6, "total {total} expect {expect}");
            for (a, c) in alloc.iter().zip(&caps) {
                prop_assert!(*a <= c + 1e-9);
                prop_assert!(*a >= -1e-12);
            }
        }

        /// Water-filling is max-min: an uncapped client never gets less than
        /// a same-weight capped client.
        #[test]
        fn water_filling_is_monotone_in_caps(
            capacity in 1.0f64..50.0,
            cap_small in 0.1f64..5.0,
        ) {
            let alloc = water_filling(capacity, &[1.0, 1.0], &[cap_small, 1e9]);
            prop_assert!(alloc[1] >= alloc[0] - 1e-9);
        }

        /// Jain index is always in (0, 1].
        #[test]
        fn jain_in_unit_interval(values in proptest::collection::vec(0.0f64..100.0, 1..20)) {
            let j = jain_index(&values);
            prop_assert!(j > 0.0 && j <= 1.0 + 1e-12, "jain {j}");
        }
    }
}
