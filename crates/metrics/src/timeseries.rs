//! Per-window user-share extraction from simulation reports.
//!
//! The paper's fairness figures plot each user's share of cluster GPU time
//! over wall-clock time, showing shares re-converging as users arrive and
//! depart. This module turns the simulator's [`WindowSample`] series into
//! those curves.

use gfair_sim::{SimReport, WindowSample};
use gfair_types::{SimTime, UserId};

/// One point on a user-share curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharePoint {
    /// Window start time.
    pub start: SimTime,
    /// The user's fraction of GPU time dispensed in the window (0 when the
    /// window dispensed nothing).
    pub share: f64,
    /// The user's raw GPU-seconds in the window.
    pub gpu_secs: f64,
}

/// Extracts `user`'s share-of-dispensed-GPU-time curve from a report.
pub fn user_share_series(report: &SimReport, user: UserId) -> Vec<SharePoint> {
    report
        .timeseries
        .iter()
        .map(|w| window_share(w, user))
        .collect()
}

/// Share of one window's dispensed GPU time belonging to `user`.
fn window_share(w: &WindowSample, user: UserId) -> SharePoint {
    let mine = w.user_gpu_secs.get(&user).copied().unwrap_or(0.0);
    let total: f64 = w.user_gpu_secs.values().sum();
    SharePoint {
        start: w.start,
        share: if total > 0.0 { mine / total } else { 0.0 },
        gpu_secs: mine,
    }
}

/// Mean absolute deviation between a user's share curve and a reference
/// share, over the windows where anything ran. Used to quantify how tightly
/// a scheduler tracks entitlements over time.
pub fn share_tracking_error(series: &[SharePoint], reference: f64) -> f64 {
    let active: Vec<&SharePoint> = series.iter().filter(|p| p.gpu_secs > 0.0).collect();
    if active.is_empty() {
        return 0.0;
    }
    active
        .iter()
        .map(|p| (p.share - reference).abs())
        .sum::<f64>()
        / active.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn window(start_secs: u64, shares: &[(u32, f64)]) -> WindowSample {
        let user_gpu_secs: BTreeMap<UserId, f64> =
            shares.iter().map(|&(u, s)| (UserId::new(u), s)).collect();
        WindowSample {
            start: SimTime::from_secs(start_secs),
            used_gpu_secs: shares.iter().map(|&(_, s)| s).sum(),
            user_gpu_secs,
            user_base_secs: BTreeMap::new(),
            capacity_gpu_secs: 100.0,
        }
    }

    fn report(windows: Vec<WindowSample>) -> SimReport {
        SimReport {
            scheduler: "t".into(),
            end: SimTime::from_secs(600),
            rounds: 0,
            jobs: BTreeMap::new(),
            user_gpu_secs: BTreeMap::new(),
            user_base_secs: BTreeMap::new(),
            user_gen_gpu_secs: BTreeMap::new(),
            server_gpu_secs: BTreeMap::new(),
            timeseries: windows,
            migrations: 0,
            migration_outage: gfair_types::SimDuration::ZERO,
            gpu_secs_used: 0.0,
            gpu_secs_capacity: 0.0,
            profile_reports: 0,
            stale_migrations: 0,
            migration_failures: 0,
            obs: None,
        }
    }

    #[test]
    fn shares_are_fraction_of_dispensed() {
        let r = report(vec![window(0, &[(0, 30.0), (1, 70.0)])]);
        let s0 = user_share_series(&r, UserId::new(0));
        assert_eq!(s0.len(), 1);
        assert!((s0[0].share - 0.3).abs() < 1e-12);
        assert_eq!(s0[0].gpu_secs, 30.0);
        let s1 = user_share_series(&r, UserId::new(1));
        assert!((s1[0].share - 0.7).abs() < 1e-12);
    }

    #[test]
    fn absent_user_has_zero_share() {
        let r = report(vec![window(0, &[(0, 10.0)])]);
        let s = user_share_series(&r, UserId::new(9));
        assert_eq!(s[0].share, 0.0);
        assert_eq!(s[0].gpu_secs, 0.0);
    }

    #[test]
    fn empty_window_yields_zero_share() {
        let r = report(vec![window(0, &[])]);
        let s = user_share_series(&r, UserId::new(0));
        assert_eq!(s[0].share, 0.0);
    }

    #[test]
    fn tracking_error_over_active_windows() {
        let series = vec![
            SharePoint {
                start: SimTime::ZERO,
                share: 0.4,
                gpu_secs: 10.0,
            },
            SharePoint {
                start: SimTime::from_secs(300),
                share: 0.6,
                gpu_secs: 10.0,
            },
            // Idle window: excluded from the error.
            SharePoint {
                start: SimTime::from_secs(600),
                share: 0.0,
                gpu_secs: 0.0,
            },
        ];
        let err = share_tracking_error(&series, 0.5);
        assert!((err - 0.1).abs() < 1e-12);
        assert_eq!(share_tracking_error(&[], 0.5), 0.0);
    }
}
