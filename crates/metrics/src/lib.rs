//! Fairness and efficiency metrics for `gfair` experiments.
//!
//! * [`fairness`] — Jain's fairness index, min/max share ratios, deviation
//!   from ticket entitlements, and weighted water-filling (the capped
//!   max-min ideal against which achieved allocations are judged).
//! * [`jct`] — job-completion-time statistics (mean, percentiles, makespan).
//! * [`timeseries`] — per-window user shares extracted from simulator
//!   reports, for the paper-style "share over time" figures.
//! * [`table`] — minimal ASCII table rendering used by every experiment
//!   binary to print paper-style rows.
//! * [`csv`] — CSV rendering of share time series and per-job records, for
//!   plotting figures externally.

#![warn(missing_docs)]

pub mod csv;
pub mod fairness;
pub mod jct;
pub mod table;
pub mod timeseries;

pub use csv::{jobs_csv, share_timeseries_csv};
pub use fairness::{gini, jain_index, max_min_ratio, normalized_shares, water_filling};
pub use jct::{mean_slowdown, slowdowns, JctStats};
pub use table::Table;
pub use timeseries::{user_share_series, SharePoint};
