//! The model zoo: ground-truth per-generation speedups.
//!
//! The paper's motivating observation ("variable marginal utility") is that
//! the V100-over-K80 speedup ranges from ~1.2x for small, input-bound models
//! (VAE) to ~5x for large compute-bound CNNs (ResNeXt). The zoo below
//! encodes that spread for the K80/P100/V100 catalog used throughout the
//! evaluation; the numbers are representative class values, not vendor
//! benchmarks.

use gfair_types::{ModelProfile, SimDuration};
use std::sync::Arc;

/// Coarse class of a model's marginal utility from faster GPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelClass {
    /// V100 speedup below ~1.5x (input- or memory-bound).
    LowSpeedup,
    /// V100 speedup between ~1.5x and ~3x.
    MediumSpeedup,
    /// V100 speedup above ~3x (compute-bound).
    HighSpeedup,
}

/// One zoo entry: model plus its marginal-utility class.
#[derive(Debug, Clone)]
pub struct ZooEntry {
    /// The model's ground-truth profile.
    pub model: Arc<ModelProfile>,
    /// Marginal-utility class.
    pub class: ModelClass,
}

fn entry(
    name: &str,
    rates: [f64; 3],
    ckpt_secs: u64,
    restore_secs: u64,
    class: ModelClass,
) -> ZooEntry {
    ZooEntry {
        model: Arc::new(ModelProfile::new(
            name,
            rates.to_vec(),
            SimDuration::from_secs(ckpt_secs),
            SimDuration::from_secs(restore_secs),
        )),
        class,
    }
}

/// The ten-model zoo used by the experiments, covering the paper's ~1.2x-5x
/// V100/K80 speedup spread. Rates are `[K80, P100, V100]` with K80 = 1.0.
pub fn zoo() -> Vec<ZooEntry> {
    vec![
        entry("VAE", [1.0, 1.12, 1.22], 5, 8, ModelClass::LowSpeedup),
        entry(
            "SuperResolution",
            [1.0, 1.25, 1.45],
            8,
            10,
            ModelClass::LowSpeedup,
        ),
        entry("GRU", [1.0, 1.45, 1.90], 12, 14, ModelClass::MediumSpeedup),
        entry("LSTM", [1.0, 1.55, 2.00], 12, 15, ModelClass::MediumSpeedup),
        entry(
            "DCGAN",
            [1.0, 1.60, 2.10],
            10,
            12,
            ModelClass::MediumSpeedup,
        ),
        entry(
            "Inception-v3",
            [1.0, 2.20, 3.00],
            20,
            22,
            ModelClass::MediumSpeedup,
        ),
        entry(
            "ResNet-50",
            [1.0, 2.40, 3.30],
            25,
            25,
            ModelClass::HighSpeedup,
        ),
        entry(
            "BERT-Base",
            [1.0, 2.60, 4.10],
            35,
            35,
            ModelClass::HighSpeedup,
        ),
        entry(
            "Transformer",
            [1.0, 2.80, 4.40],
            30,
            30,
            ModelClass::HighSpeedup,
        ),
        entry(
            "ResNeXt-50",
            [1.0, 3.00, 5.00],
            28,
            28,
            ModelClass::HighSpeedup,
        ),
    ]
}

/// Looks up a zoo model by name.
pub fn zoo_by_name(name: &str) -> Option<Arc<ModelProfile>> {
    zoo()
        .into_iter()
        .find(|e| e.model.name == name)
        .map(|e| e.model)
}

/// Zoo entries of one class.
pub fn zoo_of_class(class: ModelClass) -> Vec<ZooEntry> {
    zoo().into_iter().filter(|e| e.class == class).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfair_types::{GenCatalog, GenId};

    #[test]
    fn zoo_has_ten_models_covering_the_catalog() {
        let z = zoo();
        assert_eq!(z.len(), 10);
        let cat = GenCatalog::k80_p100_v100();
        for e in &z {
            assert!(e.model.covers(&cat), "{} misses generations", e.model.name);
        }
    }

    #[test]
    fn speedup_spread_matches_paper_claim() {
        let z = zoo();
        let v100 = GenId::new(2);
        let min = z
            .iter()
            .map(|e| e.model.speedup(v100))
            .fold(f64::INFINITY, f64::min);
        let max = z
            .iter()
            .map(|e| e.model.speedup(v100))
            .fold(f64::NEG_INFINITY, f64::max);
        // The paper motivates trading with a ~1.2x-5x spread.
        assert!(min <= 1.25, "min V100 speedup {min}");
        assert!(max >= 4.5, "max V100 speedup {max}");
    }

    #[test]
    fn classes_partition_by_v100_speedup() {
        let v100 = GenId::new(2);
        for e in zoo() {
            let s = e.model.speedup(v100);
            match e.class {
                ModelClass::LowSpeedup => assert!(s < 1.5, "{}", e.model.name),
                ModelClass::MediumSpeedup => {
                    assert!((1.5..=3.0).contains(&s), "{}", e.model.name)
                }
                ModelClass::HighSpeedup => assert!(s > 3.0, "{}", e.model.name),
            }
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(zoo_by_name("ResNet-50").is_some());
        assert!(zoo_by_name("AlexNet").is_none());
    }

    #[test]
    fn every_class_is_represented() {
        assert!(!zoo_of_class(ModelClass::LowSpeedup).is_empty());
        assert!(!zoo_of_class(ModelClass::MediumSpeedup).is_empty());
        assert!(!zoo_of_class(ModelClass::HighSpeedup).is_empty());
    }

    #[test]
    fn names_are_unique() {
        let z = zoo();
        let mut names: Vec<&str> = z.iter().map(|e| e.model.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), z.len());
    }
}
