//! Philly-like synthetic trace generation.
//!
//! Published analyses of Microsoft's Philly traces (and the paper's own
//! workload description) give the shape this generator reproduces:
//!
//! * Poisson job arrivals (exponential inter-arrival times);
//! * gang sizes that are powers of two, heavily skewed to 1-GPU jobs;
//! * heavy-tailed (lognormal) job durations, minutes to many hours;
//! * jobs drawn from a model mix whose GPU speedups vary widely.
//!
//! All sampling is driven by a caller-provided seed; the same parameters and
//! seed produce byte-identical traces.

use crate::models::{zoo, ModelClass, ZooEntry};
use gfair_types::ids::IdAllocator;
use gfair_types::{JobId, JobSpec, SimTime, UserId, UserSpec};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Parameters of a Philly-like trace.
#[derive(Debug, Clone)]
pub struct PhillyParams {
    /// Total number of jobs to generate.
    pub num_jobs: usize,
    /// Mean arrival rate, jobs per hour (Poisson process).
    pub jobs_per_hour: f64,
    /// Weights over gang sizes 1, 2, 4, 8 (need not sum to 1).
    pub gang_weights: [f64; 4],
    /// Median job service demand in base-GPU minutes.
    pub median_service_mins: f64,
    /// Lognormal sigma of the service distribution (higher = heavier tail).
    pub service_sigma: f64,
    /// Service clamp range in base-GPU minutes, to keep experiments bounded.
    pub service_clamp_mins: (f64, f64),
}

impl Default for PhillyParams {
    fn default() -> Self {
        PhillyParams {
            num_jobs: 200,
            jobs_per_hour: 40.0,
            // Philly-style skew: most jobs use a single GPU.
            gang_weights: [0.70, 0.12, 0.12, 0.06],
            median_service_mins: 60.0,
            service_sigma: 1.2,
            service_clamp_mins: (5.0, 24.0 * 60.0),
        }
    }
}

/// Deterministic trace builder.
///
/// # Examples
///
/// ```
/// use gfair_workloads::{PhillyParams, TraceBuilder};
/// use gfair_types::UserSpec;
///
/// let users = UserSpec::equal_users(4, 100);
/// let trace = TraceBuilder::new(PhillyParams::default(), 7).build(&users);
/// assert_eq!(trace.len(), 200);
/// // Deterministic: the same seed gives the same trace.
/// let again = TraceBuilder::new(PhillyParams::default(), 7).build(&users);
/// assert_eq!(trace.len(), again.len());
/// assert!(trace.iter().zip(&again).all(|(a, b)| a.id == b.id
///     && a.arrival == b.arrival && a.gang == b.gang));
/// ```
#[derive(Debug)]
pub struct TraceBuilder {
    params: PhillyParams,
    rng: ChaCha8Rng,
    ids: IdAllocator<JobId>,
    /// Restrict the model mix; `None` samples the whole zoo.
    class_filter: Option<ModelClass>,
    /// Per-user model-class overrides (takes precedence over the filter).
    user_classes: Vec<(UserId, ModelClass)>,
}

impl TraceBuilder {
    /// Creates a builder with the given parameters and seed.
    pub fn new(params: PhillyParams, seed: u64) -> Self {
        TraceBuilder {
            params,
            rng: ChaCha8Rng::seed_from_u64(seed),
            ids: IdAllocator::new(),
            class_filter: None,
            user_classes: Vec::new(),
        }
    }

    /// Restricts all jobs to one marginal-utility class.
    pub fn with_class(mut self, class: ModelClass) -> Self {
        self.class_filter = Some(class);
        self
    }

    /// Pins a user's jobs to one marginal-utility class (used by trading
    /// experiments where "VAE users" trade with "ResNeXt users").
    pub fn with_user_class(mut self, user: UserId, class: ModelClass) -> Self {
        self.user_classes.push((user, class));
        self
    }

    /// Generates the trace, assigning jobs to `users` uniformly at random.
    ///
    /// Jobs are returned sorted by arrival time.
    ///
    /// # Panics
    ///
    /// Panics if `users` is empty.
    pub fn build(mut self, users: &[UserSpec]) -> Vec<JobSpec> {
        assert!(!users.is_empty(), "trace needs at least one user");
        let full_zoo = zoo();
        let mut t = 0.0f64; // seconds
        let mut out = Vec::with_capacity(self.params.num_jobs);
        let mean_gap_secs = 3600.0 / self.params.jobs_per_hour;
        for _ in 0..self.params.num_jobs {
            // Exponential inter-arrival.
            let u: f64 = self.rng.gen_range(1e-12..1.0);
            t += -u.ln() * mean_gap_secs;
            let user = users[self.rng.gen_range(0..users.len())].id;
            let gang = self.sample_gang();
            let service_secs = self.sample_service_secs();
            let model = self.sample_model(user, &full_zoo);
            out.push(JobSpec::new(
                self.ids.next(),
                user,
                model,
                gang,
                service_secs,
                SimTime::from_micros((t * 1e6) as u64),
            ));
        }
        out
    }

    fn sample_gang(&mut self) -> u32 {
        const SIZES: [u32; 4] = [1, 2, 4, 8];
        let total: f64 = self.params.gang_weights.iter().sum();
        let mut draw = self.rng.gen_range(0.0..total);
        for (w, &size) in self.params.gang_weights.iter().zip(&SIZES) {
            if draw < *w {
                return size;
            }
            draw -= w;
        }
        SIZES[3]
    }

    fn sample_service_secs(&mut self) -> f64 {
        // Lognormal via Box-Muller: median * exp(sigma * z).
        let u1: f64 = self.rng.gen_range(1e-12..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let mins = self.params.median_service_mins * (self.params.service_sigma * z).exp();
        let (lo, hi) = self.params.service_clamp_mins;
        mins.clamp(lo, hi) * 60.0
    }

    fn sample_model(
        &mut self,
        user: UserId,
        full_zoo: &[ZooEntry],
    ) -> Arc<gfair_types::ModelProfile> {
        let class = self
            .user_classes
            .iter()
            .find(|(u, _)| *u == user)
            .map(|(_, c)| *c)
            .or(self.class_filter);
        let pool: Vec<&ZooEntry> = match class {
            Some(c) => full_zoo.iter().filter(|e| e.class == c).collect(),
            None => full_zoo.iter().collect(),
        };
        Arc::clone(&pool[self.rng.gen_range(0..pool.len())].model)
    }
}

/// Builds a fixed batch of identical jobs — the workhorse for
/// micro-experiments that need a controlled job mix rather than a random
/// trace.
///
/// `start_id` lets callers compose several batches without id collisions.
pub fn uniform_batch(
    start_id: u32,
    user: UserId,
    model: &Arc<gfair_types::ModelProfile>,
    count: u32,
    gang: u32,
    service_secs: f64,
    arrival: SimTime,
) -> Vec<JobSpec> {
    (0..count)
        .map(|i| {
            JobSpec::new(
                JobId::new(start_id + i),
                user,
                Arc::clone(model),
                gang,
                service_secs,
                arrival,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::zoo_by_name;
    use gfair_types::GenId;

    fn users(n: u32) -> Vec<UserSpec> {
        UserSpec::equal_users(n, 100)
    }

    #[test]
    fn trace_is_sorted_and_sized() {
        let trace = TraceBuilder::new(PhillyParams::default(), 1).build(&users(3));
        assert_eq!(trace.len(), 200);
        for w in trace.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
    }

    #[test]
    fn same_seed_same_trace() {
        let a = TraceBuilder::new(PhillyParams::default(), 42).build(&users(3));
        let b = TraceBuilder::new(PhillyParams::default(), 42).build(&users(3));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.user, y.user);
            assert_eq!(x.gang, y.gang);
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.service_secs, y.service_secs);
            assert_eq!(x.model.name, y.model.name);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = TraceBuilder::new(PhillyParams::default(), 1).build(&users(3));
        let b = TraceBuilder::new(PhillyParams::default(), 2).build(&users(3));
        let same = a
            .iter()
            .zip(&b)
            .filter(|(x, y)| x.arrival == y.arrival)
            .count();
        assert!(same < a.len() / 2, "seeds produced near-identical traces");
    }

    #[test]
    fn gang_sizes_are_powers_of_two_and_skewed_small() {
        let mut params = PhillyParams::default();
        params.num_jobs = 2000;
        let trace = TraceBuilder::new(params, 3).build(&users(2));
        let singles = trace.iter().filter(|j| j.gang == 1).count();
        assert!(trace.iter().all(|j| [1, 2, 4, 8].contains(&j.gang)));
        let frac = singles as f64 / trace.len() as f64;
        assert!(
            (0.6..0.8).contains(&frac),
            "single-GPU fraction {frac} should be ~0.7"
        );
    }

    #[test]
    fn service_is_clamped_and_heavy_tailed() {
        let mut params = PhillyParams::default();
        params.num_jobs = 3000;
        let trace = TraceBuilder::new(params.clone(), 5).build(&users(2));
        let (lo, hi) = params.service_clamp_mins;
        let mut secs: Vec<f64> = trace.iter().map(|j| j.service_secs).collect();
        assert!(secs
            .iter()
            .all(|&s| s >= lo * 60.0 - 1e-9 && s <= hi * 60.0 + 1e-9));
        secs.sort_by(f64::total_cmp);
        let median = secs[secs.len() / 2];
        let mean = secs.iter().sum::<f64>() / secs.len() as f64;
        // Lognormal: mean well above median.
        assert!(
            mean > median * 1.3,
            "tail too light: mean {mean} median {median}"
        );
        assert!(
            (median / 60.0 - params.median_service_mins).abs() < 15.0,
            "median {} mins drifted",
            median / 60.0
        );
    }

    #[test]
    fn arrival_rate_matches_parameter() {
        let mut params = PhillyParams::default();
        params.num_jobs = 2000;
        params.jobs_per_hour = 120.0;
        let trace = TraceBuilder::new(params, 9).build(&users(2));
        let span_hours = trace.last().unwrap().arrival.as_secs_f64() / 3600.0;
        let rate = trace.len() as f64 / span_hours;
        assert!(
            (rate - 120.0).abs() < 12.0,
            "observed rate {rate} jobs/hour"
        );
    }

    #[test]
    fn class_filter_restricts_models() {
        let trace = TraceBuilder::new(PhillyParams::default(), 11)
            .with_class(ModelClass::LowSpeedup)
            .build(&users(2));
        let v100 = GenId::new(2);
        assert!(trace.iter().all(|j| j.model.speedup(v100) < 1.5));
    }

    #[test]
    fn user_class_overrides_apply_per_user() {
        let us = users(2);
        let trace = TraceBuilder::new(PhillyParams::default(), 13)
            .with_user_class(us[0].id, ModelClass::LowSpeedup)
            .with_user_class(us[1].id, ModelClass::HighSpeedup)
            .build(&us);
        let v100 = GenId::new(2);
        for j in &trace {
            if j.user == us[0].id {
                assert!(j.model.speedup(v100) < 1.5);
            } else {
                assert!(j.model.speedup(v100) > 3.0);
            }
        }
    }

    #[test]
    fn uniform_batch_builds_identical_jobs() {
        let m = zoo_by_name("VAE").unwrap();
        let batch = uniform_batch(10, UserId::new(1), &m, 3, 2, 600.0, SimTime::from_secs(5));
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0].id, JobId::new(10));
        assert_eq!(batch[2].id, JobId::new(12));
        assert!(batch.iter().all(|j| j.gang == 2
            && j.user == UserId::new(1)
            && j.service_secs == 600.0
            && j.arrival == SimTime::from_secs(5)));
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn empty_users_panics() {
        let _ = TraceBuilder::new(PhillyParams::default(), 1).build(&[]);
    }
}
