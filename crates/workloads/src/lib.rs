//! Synthetic workloads for the Gandiva_fair reproduction.
//!
//! The paper drives its 200-GPU testbed with multi-user workloads derived
//! from Microsoft's production (Philly) traces: Poisson job arrivals,
//! power-of-two gang sizes skewed toward single-GPU jobs, heavy-tailed
//! durations, and a mix of models whose speedup on newer GPUs varies from
//! ~1.2x to ~5x. We have no access to the proprietary traces, so this crate
//! generates synthetic traces with those published shape characteristics
//! (see DESIGN.md for the substitution rationale).
//!
//! * [`models`] — the model zoo with per-generation ground-truth speedups.
//! * [`philly`] — the trace generator (Poisson arrivals, lognormal service,
//!   configurable gang mix).
//! * [`population`] — user classes (low/high speedup preference) used by the
//!   trading experiments.

pub mod models;
pub mod philly;
pub mod population;
pub mod trace_io;

pub use models::{zoo, zoo_by_name, ModelClass};
pub use philly::{PhillyParams, TraceBuilder};
pub use population::{UserClass, UserPopulation};
pub use trace_io::{load_trace, save_trace};
