//! Trace persistence: save and reload generated traces as JSON.
//!
//! Experiments are reproducible from seeds alone, but persisting the exact
//! trace lets results be audited, shared, and replayed against modified
//! schedulers without depending on the generator's sampling internals
//! staying stable across versions.

use gfair_types::JobSpec;
use std::fs;
use std::io;
use std::path::Path;

/// Serializes a trace to pretty-printed JSON at `path`.
///
/// # Errors
///
/// Propagates filesystem errors; serialization itself cannot fail for valid
/// specs.
pub fn save_trace<P: AsRef<Path>>(path: P, trace: &[JobSpec]) -> io::Result<()> {
    let json = serde_json::to_string_pretty(trace).map_err(io::Error::other)?;
    fs::write(path, json)
}

/// Loads a trace previously written by [`save_trace`].
///
/// # Errors
///
/// Propagates filesystem errors and malformed JSON.
pub fn load_trace<P: AsRef<Path>>(path: P) -> io::Result<Vec<JobSpec>> {
    let json = fs::read_to_string(path)?;
    serde_json::from_str(&json).map_err(io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PhillyParams, TraceBuilder};
    use gfair_types::UserSpec;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "gfair-trace-test-{}-{name}.json",
            std::process::id()
        ))
    }

    #[test]
    fn round_trips_a_generated_trace() {
        let users = UserSpec::equal_users(3, 100);
        let mut params = PhillyParams::default();
        params.num_jobs = 25;
        let trace = TraceBuilder::new(params, 5).build(&users);
        let path = tmp("roundtrip");
        save_trace(&path, &trace).unwrap();
        let back = load_trace(&path).unwrap();
        fs::remove_file(&path).ok();
        assert_eq!(back.len(), trace.len());
        for (a, b) in trace.iter().zip(&back) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.user, b.user);
            assert_eq!(a.gang, b.gang);
            assert_eq!(a.arrival, b.arrival);
            // JSON round-trips of f64 may drift by an ulp in the formatter.
            assert!((a.service_secs - b.service_secs).abs() <= a.service_secs * 1e-12);
            assert_eq!(a.model.name, b.model.name);
            assert_eq!(a.model.rates, b.model.rates);
        }
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load_trace("/nonexistent/gfair-trace.json").is_err());
    }

    #[test]
    fn load_malformed_json_errors() {
        let path = tmp("malformed");
        fs::write(&path, "{not json").unwrap();
        let res = load_trace(&path);
        fs::remove_file(&path).ok();
        assert!(res.is_err());
    }
}
