//! User populations for multi-tenant experiments.
//!
//! The trading experiments need user *classes*: tenants whose jobs benefit
//! little from fast GPUs (VAE-style) versus tenants whose jobs benefit a lot
//! (ResNeXt-style). A [`UserPopulation`] assembles users with tickets and
//! class labels and wires them into a [`crate::TraceBuilder`].

use crate::models::ModelClass;
use crate::philly::{PhillyParams, TraceBuilder};
use gfair_types::{JobSpec, UserId, UserSpec};

/// A user plus the model class their jobs draw from.
#[derive(Debug, Clone)]
pub struct UserClass {
    /// The user.
    pub user: UserSpec,
    /// Their jobs' marginal-utility class; `None` means the full zoo.
    pub class: Option<ModelClass>,
}

/// A set of users with optional model-class preferences.
#[derive(Debug, Clone, Default)]
pub struct UserPopulation {
    members: Vec<UserClass>,
}

impl UserPopulation {
    /// Creates an empty population.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a user with `tickets` drawing models from the whole zoo.
    pub fn user(mut self, name: &str, tickets: u64) -> Self {
        let id = UserId::new(self.members.len() as u32);
        self.members.push(UserClass {
            user: UserSpec::new(id, name, tickets),
            class: None,
        });
        self
    }

    /// Adds a user whose jobs come from one marginal-utility class.
    pub fn user_of_class(mut self, name: &str, tickets: u64, class: ModelClass) -> Self {
        let id = UserId::new(self.members.len() as u32);
        self.members.push(UserClass {
            user: UserSpec::new(id, name, tickets),
            class: Some(class),
        });
        self
    }

    /// The user specs, in id order.
    pub fn users(&self) -> Vec<UserSpec> {
        self.members.iter().map(|m| m.user.clone()).collect()
    }

    /// Number of users.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns true if no users were added.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Looks up a member by name.
    pub fn by_name(&self, name: &str) -> Option<&UserClass> {
        self.members.iter().find(|m| m.user.name == name)
    }

    /// Generates a trace honoring each user's class preference.
    pub fn trace(&self, params: PhillyParams, seed: u64) -> Vec<JobSpec> {
        let mut builder = TraceBuilder::new(params, seed);
        for m in &self.members {
            if let Some(class) = m.class {
                builder = builder.with_user_class(m.user.id, class);
            }
        }
        builder.build(&self.users())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfair_types::GenId;

    #[test]
    fn population_assigns_sequential_ids() {
        let pop = UserPopulation::new().user("alice", 100).user_of_class(
            "bob",
            200,
            ModelClass::HighSpeedup,
        );
        assert_eq!(pop.len(), 2);
        assert!(!pop.is_empty());
        let users = pop.users();
        assert_eq!(users[0].id, UserId::new(0));
        assert_eq!(users[1].id, UserId::new(1));
        assert_eq!(users[1].tickets, 200);
    }

    #[test]
    fn by_name_lookup() {
        let pop = UserPopulation::new().user("alice", 100);
        assert!(pop.by_name("alice").is_some());
        assert!(pop.by_name("mallory").is_none());
    }

    #[test]
    fn trace_honors_class_preferences() {
        let pop = UserPopulation::new()
            .user_of_class("vae-team", 100, ModelClass::LowSpeedup)
            .user_of_class("cnn-team", 100, ModelClass::HighSpeedup);
        let mut params = PhillyParams::default();
        params.num_jobs = 100;
        let trace = pop.trace(params, 17);
        let v100 = GenId::new(2);
        for j in &trace {
            if j.user == UserId::new(0) {
                assert!(j.model.speedup(v100) < 1.5, "{}", j.model.name);
            } else {
                assert!(j.model.speedup(v100) > 3.0, "{}", j.model.name);
            }
        }
    }

    #[test]
    fn unclassed_users_draw_from_full_zoo() {
        let pop = UserPopulation::new().user("any", 100);
        let mut params = PhillyParams::default();
        params.num_jobs = 300;
        let trace = pop.trace(params, 23);
        let v100 = GenId::new(2);
        let has_low = trace.iter().any(|j| j.model.speedup(v100) < 1.5);
        let has_high = trace.iter().any(|j| j.model.speedup(v100) > 3.0);
        assert!(has_low && has_high, "full-zoo sampling looks filtered");
    }
}
