//! Lottery scheduling over gangs.
//!
//! Lottery scheduling (Waldspurger & Weihl, 1994) is the randomized
//! predecessor of stride scheduling: each quantum a ticket is drawn uniformly
//! at random and the holding client wins. It is proportional *in
//! expectation* but has O(sqrt(n)) variance, which is why Gandiva_fair uses
//! stride; we keep a gang-capable lottery as a baseline so experiments can
//! show the variance gap.
//!
//! The gang variant fills a server each round by repeatedly drawing among
//! the clients whose gangs still fit the remaining GPUs.

use rand::Rng;
use std::collections::BTreeMap;

/// Per-client lottery state.
#[derive(Debug, Clone, Copy)]
struct Entrant {
    tickets: f64,
    width: u32,
    runnable: bool,
}

/// A randomized proportional-share gang scheduler.
///
/// Determinism note: all randomness comes from the `Rng` handed to
/// [`draw_round`](Self::draw_round), so runs are reproducible given a seeded
/// generator.
#[derive(Debug, Clone)]
pub struct LotteryScheduler<K> {
    capacity: u32,
    clients: BTreeMap<K, Entrant>,
}

impl<K: Copy + Ord> LotteryScheduler<K> {
    /// Creates a lottery scheduler for a server with `capacity` GPUs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u32) -> Self {
        assert!(capacity > 0, "capacity must be at least one GPU");
        LotteryScheduler {
            capacity,
            clients: BTreeMap::new(),
        }
    }

    /// Number of registered clients.
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// Returns true if no clients are registered.
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    /// Registers a gang of `width` GPUs holding `tickets` tickets.
    ///
    /// # Panics
    ///
    /// Panics on invalid tickets/width or double registration.
    pub fn join(&mut self, k: K, tickets: f64, width: u32) {
        assert!(
            tickets.is_finite() && tickets > 0.0,
            "tickets must be positive and finite, got {tickets}"
        );
        assert!(width > 0, "gang width must be at least 1");
        assert!(
            width <= self.capacity,
            "gang width {width} exceeds capacity {}",
            self.capacity
        );
        let prev = self.clients.insert(
            k,
            Entrant {
                tickets,
                width,
                runnable: true,
            },
        );
        assert!(prev.is_none(), "client joined twice");
    }

    /// Removes a client. Returns true if it was registered.
    pub fn leave(&mut self, k: K) -> bool {
        self.clients.remove(&k).is_some()
    }

    /// Marks a client runnable or not.
    ///
    /// # Panics
    ///
    /// Panics if the client is unknown.
    pub fn set_runnable(&mut self, k: K, runnable: bool) {
        self.clients.get_mut(&k).expect("unknown client").runnable = runnable;
    }

    /// Gang width of a client, if registered.
    pub fn width_of(&self, k: K) -> Option<u32> {
        self.clients.get(&k).map(|c| c.width)
    }

    /// Draws one round of winners: repeatedly holds a ticket lottery among
    /// runnable, not-yet-selected clients whose gangs fit the remaining
    /// GPUs, until nothing fits.
    pub fn draw_round<R: Rng>(&mut self, rng: &mut R) -> Vec<K> {
        let mut free = self.capacity;
        let mut selected: Vec<K> = Vec::new();
        loop {
            let pool: Vec<(K, f64, u32)> = self
                .clients
                .iter()
                .filter(|(k, c)| c.runnable && c.width <= free && !selected.contains(k))
                .map(|(k, c)| (*k, c.tickets, c.width))
                .collect();
            if pool.is_empty() {
                break;
            }
            let total: f64 = pool.iter().map(|(_, t, _)| t).sum();
            let mut draw = rng.gen_range(0.0..total);
            let mut winner = pool[pool.len() - 1];
            for &(k, t, w) in &pool {
                if draw < t {
                    winner = (k, t, w);
                    break;
                }
                draw -= t;
            }
            selected.push(winner.0);
            free -= winner.2;
            if free == 0 {
                break;
            }
        }
        selected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::collections::HashMap;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(7)
    }

    #[test]
    fn expectation_is_ticket_proportional() {
        let mut l = LotteryScheduler::new(1);
        l.join(0, 100.0, 1);
        l.join(1, 300.0, 1);
        let mut rng = rng();
        let mut wins: HashMap<u32, u32> = HashMap::new();
        for _ in 0..4000 {
            for k in l.draw_round(&mut rng) {
                *wins.entry(k).or_insert(0) += 1;
            }
        }
        let ratio = wins[&1] as f64 / wins[&0] as f64;
        assert!(
            (ratio - 3.0).abs() < 0.4,
            "expected ~3x wins for 3x tickets, got {ratio}"
        );
    }

    #[test]
    fn round_fills_capacity_with_singles() {
        let mut l = LotteryScheduler::new(4);
        for id in 0..8 {
            l.join(id, 100.0, 1);
        }
        let mut rng = rng();
        let sel = l.draw_round(&mut rng);
        assert_eq!(sel.len(), 4);
        // No duplicates.
        let mut dedup = sel.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 4);
    }

    #[test]
    fn gangs_only_win_when_they_fit() {
        let mut l = LotteryScheduler::new(4);
        l.join(0, 100.0, 3);
        l.join(1, 100.0, 3);
        let mut rng = rng();
        for _ in 0..100 {
            let sel = l.draw_round(&mut rng);
            // Two width-3 gangs can never run together on 4 GPUs.
            assert_eq!(sel.len(), 1);
        }
    }

    #[test]
    fn suspended_clients_never_win() {
        let mut l = LotteryScheduler::new(2);
        l.join(0, 1000.0, 1);
        l.join(1, 1.0, 1);
        l.set_runnable(0, false);
        let mut rng = rng();
        for _ in 0..20 {
            assert_eq!(l.draw_round(&mut rng), vec![1]);
        }
    }

    #[test]
    fn lottery_variance_exceeds_stride() {
        // The motivating comparison: over short windows, lottery shares
        // fluctuate while stride pins them. Measure per-window share stddev.
        let windows = 50;
        let per_window = 20;
        let mut l = LotteryScheduler::new(1);
        l.join(0, 100.0, 1);
        l.join(1, 100.0, 1);
        let mut rng = rng();
        let mut lottery_shares = Vec::new();
        for _ in 0..windows {
            let mut wins0 = 0;
            for _ in 0..per_window {
                if l.draw_round(&mut rng) == vec![0] {
                    wins0 += 1;
                }
            }
            lottery_shares.push(wins0 as f64 / per_window as f64);
        }
        let mean: f64 = lottery_shares.iter().sum::<f64>() / windows as f64;
        let var: f64 = lottery_shares
            .iter()
            .map(|s| (s - mean) * (s - mean))
            .sum::<f64>()
            / windows as f64;

        let mut s = crate::StrideScheduler::new();
        s.join(0u32, 100.0);
        s.join(1u32, 100.0);
        let mut stride_shares = Vec::new();
        for _ in 0..windows {
            let mut wins0 = 0;
            for _ in 0..per_window {
                let k = s.pick().unwrap();
                s.run(k, 1.0);
                if k == 0 {
                    wins0 += 1;
                }
            }
            stride_shares.push(wins0 as f64 / per_window as f64);
        }
        let smean: f64 = stride_shares.iter().sum::<f64>() / windows as f64;
        let svar: f64 = stride_shares
            .iter()
            .map(|s| (s - smean) * (s - smean))
            .sum::<f64>()
            / windows as f64;
        assert!(
            var > svar * 4.0,
            "lottery variance {var} should dwarf stride variance {svar}"
        );
    }

    #[test]
    fn leave_and_rejoin() {
        let mut l = LotteryScheduler::new(1);
        l.join(0, 100.0, 1);
        assert!(l.leave(0));
        assert!(!l.leave(0));
        assert!(l.is_empty());
        l.join(0, 100.0, 1);
        assert_eq!(l.len(), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn oversized_gang_panics() {
        let mut l = LotteryScheduler::new(2);
        l.join(0, 100.0, 3);
    }

    #[test]
    fn empty_draw_returns_nothing() {
        let mut l = LotteryScheduler::<u32>::new(2);
        let mut rng = rng();
        assert!(l.draw_round(&mut rng).is_empty());
    }
}
