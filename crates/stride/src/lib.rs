//! Proportional-share scheduling primitives for `gfair`.
//!
//! This crate implements the algorithmic heart of the Gandiva_fair
//! reproduction:
//!
//! * [`classic`] — textbook stride scheduling (Waldspurger & Weihl) with
//!   dynamic client join/leave and ticket modulation.
//! * [`lottery`] — randomized lottery scheduling, the probabilistic cousin of
//!   stride, used as a fairness-variance baseline.
//! * [`gang`] — **gang-aware stride scheduling**, the paper's core local
//!   scheduler: gangs (multi-GPU jobs) are packed onto a server's GPUs in
//!   pass order each quantum, and a client's pass advances in proportion to
//!   the *GPU-time* it consumed (gang width × quantum / tickets), yielding
//!   ticket-proportional GPU-time across gangs of different widths. Two
//!   deliberately naive variants ([`gang::GangPolicy::JobLevelStride`] and
//!   [`gang::GangPolicy::StrictNoBackfill`]) reproduce the failure modes the
//!   paper motivates against.
//! * [`split`] — split (hierarchical) stride: user-level fairness first, then
//!   job-level within each user, so a user cannot inflate their share by
//!   submitting more jobs.
//!
//! The schedulers are generic over the client key so they can arbitrate jobs,
//! users, or anything `Copy + Ord`.

pub mod classic;
pub mod gang;
pub mod lottery;
pub mod split;

pub use classic::StrideScheduler;
pub use gang::{GangPolicy, GangScheduler, RoundOutcome};
pub use lottery::LotteryScheduler;
pub use split::SplitStride;

/// The canonical stride constant: strides are `STRIDE1 / tickets`.
///
/// Chosen large enough that per-quantum pass increments retain precision for
/// realistic ticket counts while staying well inside `f64`'s exact-integer
/// range for simulation-length runs.
pub const STRIDE1: f64 = (1u64 << 20) as f64;
