//! Gang-aware stride scheduling — the paper's core local scheduler.
//!
//! Deep-learning jobs are *gangs*: a job with gang width `w` needs `w` GPUs
//! simultaneously for a whole quantum, or nothing. Applying stride scheduling
//! naively to gangs fails in one of two ways, which the paper motivates
//! against and this module reproduces as baselines:
//!
//! * **Job-level stride** ([`GangPolicy::JobLevelStride`]) advances a job's
//!   pass by one quantum per *round* it runs, regardless of width. A
//!   gang-of-8 then receives 8x the GPU-time of a gang-of-1 at equal
//!   tickets — resource-unfair.
//! * **Strict stride** ([`GangPolicy::StrictNoBackfill`]) refuses to run any
//!   job ahead of the minimum-pass job. When the min-pass gang is wide the
//!   server idles GPUs that smaller jobs could use — work-non-conserving.
//!
//! The **gang-aware** policy ([`GangPolicy::GangAware`]) fixes both: each
//! round, runnable jobs are scanned in pass order and packed greedily into
//! the server's GPUs; a scheduled job's pass advances by
//! `stride x width` (GPU-time, not job-time); a *skipped* job's pass does not
//! advance, so it sinks to the minimum and — because the scan starts with the
//! full server free — is guaranteed the first slot within a bounded number of
//! rounds. The result is ticket-proportional *GPU-time* with bounded lag and
//! no starvation, while still backfilling smaller jobs.

use crate::STRIDE1;
use std::collections::{BTreeMap, BTreeSet};

/// Pass value as a totally ordered key (`f64::total_cmp` semantics), so
/// runnable clients can live in a sorted structure keyed by `(pass, key)` —
/// the exact order [`GangScheduler::plan_round`] scans in.
#[derive(Debug, Clone, Copy)]
struct Pass(f64);

impl PartialEq for Pass {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0).is_eq()
    }
}

impl Eq for Pass {}

impl PartialOrd for Pass {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Pass {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// How the scheduler handles gangs that do not fit the remaining capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GangPolicy {
    /// Pass-order scan with greedy packing; pass advances by GPU-time.
    /// This is Gandiva_fair's gang-aware stride.
    #[default]
    GangAware,
    /// Pass-order scan with greedy packing, but pass advances by one quantum
    /// per scheduled round regardless of gang width (job-level fairness —
    /// wide gangs hoard GPU-time).
    JobLevelStride,
    /// Serve strictly in pass order: when the minimum-pass runnable job does
    /// not fit the remaining GPUs, stop and idle the rest (fair but
    /// work-non-conserving).
    StrictNoBackfill,
}

/// Per-client gang bookkeeping.
#[derive(Debug, Clone, Copy)]
struct GangClient {
    tickets: f64,
    width: u32,
    pass: f64,
    runnable: bool,
}

impl GangClient {
    fn stride(&self) -> f64 {
        STRIDE1 / self.tickets
    }
}

/// Outcome of planning one scheduling round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundOutcome<K> {
    /// Clients selected to run this quantum, in selection order.
    pub selected: Vec<K>,
    /// GPUs used by the selected gangs.
    pub gpus_used: u32,
    /// GPUs left idle this quantum.
    pub gpus_idle: u32,
}

/// A gang scheduler over a server with a fixed number of GPUs.
///
/// # Examples
///
/// ```
/// use gfair_stride::{GangScheduler, GangPolicy};
///
/// // An 8-GPU server with a gang-of-8 and two gang-of-4 jobs, equal tickets.
/// let mut g = GangScheduler::new(8, GangPolicy::GangAware);
/// g.join("big", 100.0, 8);
/// g.join("mid1", 100.0, 4);
/// g.join("mid2", 100.0, 4);
/// let mut gpu_time = std::collections::HashMap::new();
/// for _ in 0..300 {
///     for k in g.plan_round().selected {
///         *gpu_time.entry(k).or_insert(0u64) += g.width_of(k).unwrap() as u64;
///     }
/// }
/// // Equal tickets => equal accumulated GPU-time despite different widths.
/// let big = gpu_time[&"big"] as f64;
/// let mid = gpu_time[&"mid1"] as f64;
/// assert!((big - mid).abs() / big < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct GangScheduler<K> {
    capacity: u32,
    policy: GangPolicy,
    clients: BTreeMap<K, GangClient>,
    /// Runnable clients keyed by `(pass, key)` — the scan order of
    /// [`plan_round`](Self::plan_round). Kept in lockstep with `clients`:
    /// contains exactly the runnable ones, under their current pass. A round
    /// then reads the order off the tree and re-keys only the clients whose
    /// pass advanced, instead of re-sorting the full client set.
    order: BTreeSet<(Pass, K)>,
    global_pass: f64,
    total_tickets: f64,
}

impl<K: Copy + Ord> GangScheduler<K> {
    /// Creates a gang scheduler for a server with `capacity` GPUs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u32, policy: GangPolicy) -> Self {
        assert!(capacity > 0, "capacity must be at least one GPU");
        GangScheduler {
            capacity,
            policy,
            clients: BTreeMap::new(),
            order: BTreeSet::new(),
            global_pass: 0.0,
            total_tickets: 0.0,
        }
    }

    /// Server GPU capacity.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// The policy this scheduler was built with.
    pub fn policy(&self) -> GangPolicy {
        self.policy
    }

    /// Number of registered clients.
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// Returns true if no clients are registered.
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    /// Gang width of a client, if registered.
    pub fn width_of(&self, k: K) -> Option<u32> {
        self.clients.get(&k).map(|c| c.width)
    }

    /// Pass value of a client, if registered.
    pub fn pass_of(&self, k: K) -> Option<f64> {
        self.clients.get(&k).map(|c| c.pass)
    }

    /// Tickets of a client, if registered.
    pub fn tickets_of(&self, k: K) -> Option<f64> {
        self.clients.get(&k).map(|c| c.tickets)
    }

    /// Total tickets across registered clients.
    pub fn total_tickets(&self) -> f64 {
        self.total_tickets
    }

    /// Registers a gang of `width` GPUs with the given tickets.
    ///
    /// # Panics
    ///
    /// Panics if the gang is wider than the server, tickets are invalid, or
    /// the client is already registered.
    pub fn join(&mut self, k: K, tickets: f64, width: u32) {
        assert!(
            tickets.is_finite() && tickets > 0.0,
            "tickets must be positive and finite, got {tickets}"
        );
        assert!(width > 0, "gang width must be at least 1");
        assert!(
            width <= self.capacity,
            "gang width {width} exceeds server capacity {}",
            self.capacity
        );
        let pass = self.global_pass + STRIDE1 / tickets;
        let prev = self.clients.insert(
            k,
            GangClient {
                tickets,
                width,
                pass,
                runnable: true,
            },
        );
        assert!(prev.is_none(), "client joined twice");
        self.order.insert((Pass(pass), k));
        self.total_tickets += tickets;
    }

    /// Removes a client. Returns true if it was registered.
    pub fn leave(&mut self, k: K) -> bool {
        match self.clients.remove(&k) {
            Some(c) => {
                if c.runnable {
                    self.order.remove(&(Pass(c.pass), k));
                }
                self.total_tickets -= c.tickets;
                if self.clients.is_empty() {
                    self.total_tickets = 0.0;
                }
                true
            }
            None => false,
        }
    }

    /// Changes a client's tickets, rescaling pending pass debt (see
    /// [`crate::classic::StrideScheduler::set_tickets`]).
    ///
    /// # Panics
    ///
    /// Panics if the client is unknown or tickets are invalid.
    pub fn set_tickets(&mut self, k: K, tickets: f64) {
        assert!(
            tickets.is_finite() && tickets > 0.0,
            "tickets must be positive and finite, got {tickets}"
        );
        let global = self.global_pass;
        let c = self.clients.get_mut(&k).expect("unknown client");
        if tickets == c.tickets {
            // An unchanged ticket count must be a true no-op: re-deriving the
            // pass through `global + (pass - global)` is not an f64 identity
            // and would drift the pass on every refresh.
            return;
        }
        let remain = c.pass - global;
        let scaled = remain * (c.tickets / tickets);
        self.total_tickets += tickets - c.tickets;
        c.tickets = tickets;
        let (old_pass, runnable) = (c.pass, c.runnable);
        c.pass = global + scaled;
        let new_pass = c.pass;
        if runnable {
            self.order.remove(&(Pass(old_pass), k));
            self.order.insert((Pass(new_pass), k));
        }
    }

    /// Marks a client runnable or not (e.g. suspended for migration).
    /// Non-runnable clients are skipped by [`plan_round`](Self::plan_round)
    /// and their pass does not advance.
    ///
    /// # Panics
    ///
    /// Panics if the client is unknown.
    pub fn set_runnable(&mut self, k: K, runnable: bool) {
        let c = self.clients.get_mut(&k).expect("unknown client");
        if c.runnable == runnable {
            return;
        }
        c.runnable = runnable;
        let pass = c.pass;
        if runnable {
            self.order.insert((Pass(pass), k));
        } else {
            self.order.remove(&(Pass(pass), k));
        }
    }

    /// Plans one quantum: selects the gangs to run and advances pass values.
    ///
    /// Selection depends on the policy; see the module docs. Returns the
    /// selected clients (in selection order) and GPU usage for the round.
    pub fn plan_round(&mut self) -> RoundOutcome<K> {
        // Scan the pass-ordered index — already sorted by (pass, key), the
        // exact order the former full sort produced. The scan touches only
        // the clients up to the stop condition; nothing is re-sorted.
        let mut free = self.capacity;
        let mut selected = Vec::new();
        for &(_, k) in &self.order {
            let width = self.clients[&k].width;
            if width <= free {
                selected.push(k);
                free -= width;
                if free == 0 {
                    break;
                }
            } else if self.policy == GangPolicy::StrictNoBackfill {
                // Nothing may run ahead of the min-pass job.
                break;
            }
            // GangAware / JobLevelStride: skip and keep scanning (backfill);
            // the skipped client's pass does not advance, so it sinks toward
            // the minimum and will head the scan of a future round.
        }

        // Advance passes for the scheduled clients, re-keying only them in
        // the order index (a skipped client's pass — and key — is unchanged).
        let mut used = 0u32;
        for &k in &selected {
            let c = self.clients.get_mut(&k).expect("selected client exists");
            let quanta = match self.policy {
                GangPolicy::JobLevelStride => 1.0,
                GangPolicy::GangAware | GangPolicy::StrictNoBackfill => c.width as f64,
            };
            let old_pass = c.pass;
            c.pass += c.stride() * quanta;
            let new_pass = c.pass;
            used += c.width;
            self.order.remove(&(Pass(old_pass), k));
            self.order.insert((Pass(new_pass), k));
        }
        // Advance global virtual time by the GPU-quanta actually dispensed.
        if self.total_tickets > 0.0 && used > 0 {
            self.global_pass += STRIDE1 * used as f64 / self.total_tickets;
        }

        RoundOutcome {
            selected,
            gpus_used: used,
            gpus_idle: self.capacity - used,
        }
    }

    /// Returns how many consecutive rounds (at most `k`) the next calls to
    /// [`plan_round`](Self::plan_round) would select exactly `expected`, in
    /// that order. Does not mutate any state.
    ///
    /// Quiescence requires every runnable client to fit the server at once
    /// (then the selection *set* is trivially stable) and the `(pass, key)`
    /// scan order to survive each round's pass advance. Order matters, not
    /// just membership: the selection order fixes the exact sequence of
    /// float operations a caller performs per selected client, so an order
    /// rotation ends the replayable span even though the same clients run.
    ///
    /// The returned `j` is the guarantee backing
    /// [`fast_forward`](Self::fast_forward): `fast_forward(j)` then leaves
    /// the scheduler byte-identical to `j` calls of `plan_round`.
    pub fn quiescent_rounds(&self, expected: &[K], k: u64) -> u64 {
        if k == 0 {
            return 0;
        }
        if self.order.is_empty() {
            // Nothing runnable: every round selects nothing and changes
            // nothing, so any horizon replays trivially.
            return if expected.is_empty() { k } else { 0 };
        }
        if self.order.len() != expected.len() {
            return 0;
        }
        // Scratch copies of (pass, per-round delta, key) in scan order. The
        // delta `stride() * quanta` is recomputed identically by every naive
        // round (tickets and width are untouched between rounds), so
        // repeated `pass += delta` reproduces the naive float sequence
        // bit-for-bit.
        let mut entries: Vec<(f64, f64, K)> = Vec::with_capacity(expected.len());
        let mut width = 0u64;
        for (&(Pass(pass), key), &exp) in self.order.iter().zip(expected.iter()) {
            if key != exp {
                return 0;
            }
            let c = &self.clients[&key];
            width += c.width as u64;
            let quanta = match self.policy {
                GangPolicy::JobLevelStride => 1.0,
                GangPolicy::GangAware | GangPolicy::StrictNoBackfill => c.width as f64,
            };
            entries.push((pass, c.stride() * quanta, key));
        }
        if width > self.capacity as u64 {
            // Contended server: skipped clients sink toward the minimum and
            // reshape the selection, so no round is safely replayable.
            return 0;
        }
        // Round 1 replays `expected` as-is; each further round requires the
        // advanced passes to preserve the strict (pass, key) scan order.
        let mut j = 1u64;
        'span: while j < k {
            for e in entries.iter_mut() {
                e.0 += e.1;
            }
            for w in entries.windows(2) {
                let (pa, _, ka) = w[0];
                let (pb, _, kb) = w[1];
                if pa.total_cmp(&pb).then(ka.cmp(&kb)) != std::cmp::Ordering::Less {
                    break 'span;
                }
            }
            j += 1;
        }
        j
    }

    /// Replays `j` quiescent rounds in one step.
    ///
    /// The caller must have verified `j <=`
    /// [`quiescent_rounds`](Self::quiescent_rounds) for the current state.
    /// Under that precondition the post-call state (client passes, order
    /// index, global pass) is byte-identical to calling
    /// [`plan_round`](Self::plan_round) `j` times: each client's pass is an
    /// independent accumulator receiving the same `j` additions of the same
    /// delta, and the global pass receives the same `j` additions because
    /// the GPU-quanta dispensed per round are identical across the span.
    pub fn fast_forward(&mut self, j: u64) {
        if j == 0 || self.order.is_empty() {
            return;
        }
        let keys: Vec<K> = self.order.iter().map(|&(_, k)| k).collect();
        let mut used = 0u32;
        for k in keys {
            let c = self.clients.get_mut(&k).expect("ordered client exists");
            let quanta = match self.policy {
                GangPolicy::JobLevelStride => 1.0,
                GangPolicy::GangAware | GangPolicy::StrictNoBackfill => c.width as f64,
            };
            let delta = c.stride() * quanta;
            let old_pass = c.pass;
            for _ in 0..j {
                c.pass += delta;
            }
            let new_pass = c.pass;
            used += c.width;
            self.order.remove(&(Pass(old_pass), k));
            self.order.insert((Pass(new_pass), k));
        }
        if self.total_tickets > 0.0 && used > 0 {
            let delta = STRIDE1 * used as f64 / self.total_tickets;
            for _ in 0..j {
                self.global_pass += delta;
            }
        }
    }

    /// Iterates over `(client, tickets, width, pass)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (K, f64, u32, f64)> + '_ {
        self.clients
            .iter()
            .map(|(k, c)| (*k, c.tickets, c.width, c.pass))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Runs `rounds` rounds and returns accumulated GPU-quanta per client.
    fn gpu_time(g: &mut GangScheduler<u32>, rounds: usize) -> HashMap<u32, u64> {
        let mut acc = HashMap::new();
        for _ in 0..rounds {
            let out = g.plan_round();
            for k in out.selected {
                *acc.entry(k).or_insert(0) += g.width_of(k).unwrap() as u64;
            }
        }
        acc
    }

    #[test]
    fn gang_aware_equalizes_gpu_time_across_widths() {
        // 8-GPU server: a gang-of-8 versus two gangs-of-4, equal tickets.
        // Rounds are either {8} or {4, 4}, so every client fully contends and
        // exact GPU-time equality is feasible; stride must deliver it.
        let mut g = GangScheduler::new(8, GangPolicy::GangAware);
        for (id, w) in [(0, 8), (1, 4), (2, 4)] {
            g.join(id, 100.0, w);
        }
        let acc = gpu_time(&mut g, 900);
        let total: u64 = acc.values().sum();
        for (&id, &t) in &acc {
            let share = t as f64 / total as f64;
            assert!(
                (share - 1.0 / 3.0).abs() < 0.02,
                "client {id} got share {share}, expected ~1/3 ({acc:?})"
            );
        }
    }

    #[test]
    fn mixed_widths_avoid_starvation_and_stay_utilized() {
        // Widths {8, 4, 2, 1, 1} cannot all be equalized (packing makes it
        // infeasible: when the 8-gang runs, nothing else can). The algorithm
        // must still (a) starve nobody, (b) keep utilization high, and
        // (c) treat identical clients identically.
        let mut g = GangScheduler::new(8, GangPolicy::GangAware);
        for (id, w) in [(0, 8), (1, 4), (2, 2), (3, 1), (4, 1)] {
            g.join(id, 100.0, w);
        }
        let rounds = 2000usize;
        let mut used_total = 0u64;
        let mut acc: HashMap<u32, u64> = HashMap::new();
        for _ in 0..rounds {
            let out = g.plan_round();
            used_total += out.gpus_used as u64;
            for k in out.selected {
                *acc.entry(k).or_insert(0) += g.width_of(k).unwrap() as u64;
            }
        }
        let total: u64 = acc.values().sum();
        for id in 0..5u32 {
            let share = *acc.get(&id).unwrap_or(&0) as f64 / total as f64;
            assert!(share > 0.08, "client {id} starved: share {share} ({acc:?})");
        }
        // Identical width-1, equal-ticket clients must get ~equal service.
        let (a, b) = (acc[&3] as f64, acc[&4] as f64);
        assert!((a - b).abs() / a < 0.05, "twins diverged: {a} vs {b}");
        // Work conservation: utilization stays high despite the wide gang.
        let util = used_total as f64 / (rounds as f64 * 8.0);
        assert!(util > 0.85, "utilization collapsed: {util}");
    }

    #[test]
    fn job_level_stride_lets_wide_gangs_hoard() {
        let mut g = GangScheduler::new(8, GangPolicy::JobLevelStride);
        g.join(0, 100.0, 8);
        g.join(1, 100.0, 1);
        let acc = gpu_time(&mut g, 400);
        // Both run every other round (or together when they fit — they
        // don't, 8+1>8), so GPU-time ratio approaches the width ratio 8:1.
        let ratio = acc[&0] as f64 / acc[&1] as f64;
        assert!(
            ratio > 4.0,
            "expected wide gang to hoard GPU-time, ratio {ratio} ({acc:?})"
        );
    }

    #[test]
    fn strict_policy_idles_gpus() {
        let mut g = GangScheduler::new(8, GangPolicy::StrictNoBackfill);
        g.join(0, 100.0, 5);
        g.join(1, 100.0, 5);
        // Only one width-5 gang fits; the strict policy must not backfill the
        // other, idling 3 GPUs every round.
        let out = g.plan_round();
        assert_eq!(out.selected.len(), 1);
        assert_eq!(out.gpus_idle, 3);
    }

    #[test]
    fn gang_aware_backfills_what_fits() {
        let mut g = GangScheduler::new(8, GangPolicy::GangAware);
        g.join(0, 100.0, 5);
        g.join(1, 100.0, 5);
        g.join(2, 100.0, 3);
        // Whichever 5-gang is selected first, the 3-gang fits alongside.
        let out = g.plan_round();
        assert_eq!(out.gpus_used, 8);
        assert!(out.selected.contains(&2));
    }

    #[test]
    fn no_starvation_of_full_width_gang() {
        // A full-width gang among many singles must still run regularly.
        let mut g = GangScheduler::new(4, GangPolicy::GangAware);
        g.join(0, 100.0, 4);
        for id in 1..=4 {
            g.join(id, 100.0, 1);
        }
        let acc = gpu_time(&mut g, 500);
        let total: u64 = acc.values().sum();
        let share = acc[&0] as f64 / total as f64;
        assert!(
            (share - 0.2).abs() < 0.05,
            "full-width gang share {share}, expected ~0.2"
        );
    }

    #[test]
    fn tickets_weight_gpu_time() {
        // Capacity 2 with two width-2 gangs: exactly one runs per round, so
        // tickets fully determine the round split.
        let mut g = GangScheduler::new(2, GangPolicy::GangAware);
        g.join(0, 300.0, 2);
        g.join(1, 100.0, 2);
        let acc = gpu_time(&mut g, 400);
        let ratio = acc[&0] as f64 / acc[&1] as f64;
        assert!(
            (ratio - 3.0).abs() < 0.2,
            "expected 3x GPU-time for 3x tickets, got {ratio}"
        );
    }

    #[test]
    fn work_conserving_when_demand_suffices() {
        // With plenty of single-GPU jobs the server must never idle.
        let mut g = GangScheduler::new(8, GangPolicy::GangAware);
        for id in 0..10 {
            g.join(id, 100.0, 1);
        }
        for _ in 0..50 {
            let out = g.plan_round();
            assert_eq!(out.gpus_idle, 0);
        }
    }

    #[test]
    fn packing_gap_smaller_than_any_skipped_gang() {
        // Work-conservation invariant of the packer: after planning, the
        // free GPUs cannot fit any runnable job that was skipped.
        let mut g = GangScheduler::new(8, GangPolicy::GangAware);
        for (id, w) in [(0, 3), (1, 3), (2, 4), (3, 6), (4, 2)] {
            g.join(id, 100.0, w);
        }
        for _ in 0..100 {
            let out = g.plan_round();
            let skipped_min_width = g
                .iter()
                .filter(|(k, _, _, _)| !out.selected.contains(k))
                .map(|(_, _, w, _)| w)
                .min();
            if let Some(minw) = skipped_min_width {
                assert!(out.gpus_idle < minw);
            }
        }
    }

    #[test]
    fn suspended_clients_are_not_scheduled() {
        let mut g = GangScheduler::new(4, GangPolicy::GangAware);
        g.join(0, 100.0, 2);
        g.join(1, 100.0, 2);
        g.set_runnable(0, false);
        for _ in 0..10 {
            let out = g.plan_round();
            assert_eq!(out.selected, vec![1]);
        }
        g.set_runnable(0, true);
        // After resuming, client 0 catches up (its pass lagged behind).
        let out = g.plan_round();
        assert!(out.selected.contains(&0));
    }

    #[test]
    fn leave_frees_tickets() {
        let mut g = GangScheduler::new(4, GangPolicy::GangAware);
        g.join(0, 100.0, 2);
        g.join(1, 100.0, 2);
        assert!(g.leave(0));
        assert!(!g.leave(0));
        assert_eq!(g.total_tickets(), 100.0);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn set_tickets_shifts_share() {
        // Capacity 2 forces the two width-2 gangs to alternate.
        let mut g = GangScheduler::new(2, GangPolicy::GangAware);
        g.join(0, 100.0, 2);
        g.join(1, 100.0, 2);
        let _ = gpu_time(&mut g, 100);
        g.set_tickets(0, 300.0);
        let acc = gpu_time(&mut g, 600);
        let ratio = acc[&0] as f64 / acc[&1] as f64;
        assert!(
            ratio > 2.4,
            "after modulation client 0 should get ~3x, got {ratio}"
        );
    }

    #[test]
    fn empty_round_is_harmless() {
        let mut g = GangScheduler::<u32>::new(4, GangPolicy::GangAware);
        let out = g.plan_round();
        assert!(out.selected.is_empty());
        assert_eq!(out.gpus_idle, 4);
    }

    #[test]
    #[should_panic(expected = "exceeds server capacity")]
    fn oversized_gang_panics() {
        let mut g = GangScheduler::new(4, GangPolicy::GangAware);
        g.join(0, 100.0, 5);
    }

    #[test]
    #[should_panic(expected = "capacity must be at least one GPU")]
    fn zero_capacity_panics() {
        let _ = GangScheduler::<u32>::new(0, GangPolicy::GangAware);
    }

    #[test]
    fn late_joiner_integrates_smoothly() {
        let mut g = GangScheduler::new(8, GangPolicy::GangAware);
        g.join(0, 100.0, 4);
        g.join(1, 100.0, 4);
        let _ = gpu_time(&mut g, 200);
        g.join(2, 100.0, 4);
        let acc = gpu_time(&mut g, 600);
        let total: u64 = acc.values().sum();
        let share2 = acc[&2] as f64 / total as f64;
        // Three equal-ticket clients from here on: newcomer gets ~1/3.
        assert!(
            (share2 - 1.0 / 3.0).abs() < 0.05,
            "late joiner share {share2}"
        );
    }

    #[test]
    fn set_tickets_with_unchanged_count_is_a_true_noop() {
        let mut g = GangScheduler::new(8, GangPolicy::GangAware);
        g.join(0, 100.0, 2);
        g.join(1, 50.0, 3);
        for _ in 0..7 {
            g.plan_round();
        }
        let before: Vec<_> = g
            .iter()
            .map(|(k, t, w, p)| (k, t, w, p.to_bits()))
            .collect();
        g.set_tickets(0, 100.0);
        g.set_tickets(1, 50.0);
        let after: Vec<_> = g
            .iter()
            .map(|(k, t, w, p)| (k, t, w, p.to_bits()))
            .collect();
        assert_eq!(before, after, "unchanged tickets must not drift passes");
    }

    /// Asserts the two schedulers hold bit-identical state.
    fn assert_state_eq(a: &GangScheduler<u32>, b: &GangScheduler<u32>) {
        let sa: Vec<_> = a
            .iter()
            .map(|(k, t, w, p)| (k, t.to_bits(), w, p.to_bits()))
            .collect();
        let sb: Vec<_> = b
            .iter()
            .map(|(k, t, w, p)| (k, t.to_bits(), w, p.to_bits()))
            .collect();
        assert_eq!(sa, sb, "client state diverged");
        assert_eq!(
            a.global_pass.to_bits(),
            b.global_pass.to_bits(),
            "global pass diverged: {} vs {}",
            a.global_pass,
            b.global_pass
        );
        let oa: Vec<_> = a
            .order
            .iter()
            .map(|&(Pass(p), k)| (p.to_bits(), k))
            .collect();
        let ob: Vec<_> = b
            .order
            .iter()
            .map(|&(Pass(p), k)| (p.to_bits(), k))
            .collect();
        assert_eq!(oa, ob, "order index diverged");
    }

    #[test]
    fn fast_forward_matches_stepping_for_all_policies() {
        for policy in [
            GangPolicy::GangAware,
            GangPolicy::JobLevelStride,
            GangPolicy::StrictNoBackfill,
        ] {
            // All gangs fit at once (3+2+4+1 = 10 <= 16), so rounds are
            // quiescent until the scan order rotates.
            let mut a = GangScheduler::new(16, policy);
            for (id, (t, w)) in [(130.0, 3u32), (70.0, 2), (100.0, 4), (55.5, 1)]
                .into_iter()
                .enumerate()
            {
                a.join(id as u32, t, w);
            }
            let mut b = a.clone();
            let mut ff_total = 0u64;
            for _ in 0..30 {
                // A naive round yields the cached plan each span replays;
                // when the scan order rotated, the probe returns 0 and the
                // next naive round re-caches — exactly the engine's loop.
                let cached = a.plan_round().selected;
                assert_eq!(b.plan_round().selected, cached, "{policy:?}");
                let j = a.quiescent_rounds(&cached, 50);
                assert!(j <= 50);
                a.fast_forward(j);
                for _ in 0..j {
                    assert_eq!(b.plan_round().selected, cached, "{policy:?}");
                }
                assert_state_eq(&a, &b);
                ff_total += j;
            }
            // All gangs fit, so deltas are constant and pairwise pass gaps
            // are monotonic: the order settles after finitely many swaps and
            // long spans must have been granted.
            assert!(
                ff_total >= 100,
                "spans too short to exercise batching ({policy:?}: {ff_total})"
            );
        }
    }

    #[test]
    fn quiescent_rounds_declines_contended_servers() {
        let mut g = GangScheduler::new(4, GangPolicy::GangAware);
        g.join(0, 100.0, 3);
        g.join(1, 100.0, 3);
        let cached = g.plan_round().selected;
        assert_eq!(g.quiescent_rounds(&cached, 100), 0);
    }

    #[test]
    fn quiescent_rounds_declines_mismatched_plans() {
        let mut g = GangScheduler::new(8, GangPolicy::GangAware);
        g.join(0, 100.0, 2);
        g.join(1, 100.0, 2);
        let _ = g.plan_round();
        assert_eq!(g.quiescent_rounds(&[1, 0], 10), 0, "wrong order");
        assert_eq!(g.quiescent_rounds(&[0], 10), 0, "wrong membership");
        assert_eq!(g.quiescent_rounds(&[], 10), 0, "empty vs runnable");
    }

    #[test]
    fn empty_scheduler_is_quiescent_forever() {
        let mut g = GangScheduler::<u32>::new(4, GangPolicy::GangAware);
        assert_eq!(g.quiescent_rounds(&[], 42), 42);
        g.fast_forward(42);
        assert!(g.plan_round().selected.is_empty());
        // Suspended-only populations behave like empty ones.
        g.join(0, 100.0, 1);
        g.set_runnable(0, false);
        let before = g.pass_of(0).unwrap().to_bits();
        assert_eq!(g.quiescent_rounds(&[], 7), 7);
        g.fast_forward(7);
        assert_eq!(g.pass_of(0).unwrap().to_bits(), before);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    proptest! {
        /// With capacity equal to the (uniform) gang width, exactly one gang
        /// runs per round and gang-aware stride degenerates to classic
        /// stride: service must be ticket-proportional with bounded lag.
        #[test]
        fn contended_same_width_clients_are_ticket_proportional(
            width in 1u32..5,
            tickets in proptest::collection::vec(1u32..20, 2..5),
        ) {
            let capacity = width;
            let mut g = GangScheduler::new(capacity, GangPolicy::GangAware);
            for (i, &t) in tickets.iter().enumerate() {
                g.join(i as u32, t as f64 * 10.0, width);
            }
            let rounds = 2000usize;
            let mut acc: HashMap<u32, u64> = HashMap::new();
            for _ in 0..rounds {
                for k in g.plan_round().selected {
                    *acc.entry(k).or_insert(0) += width as u64;
                }
            }
            let total_t: f64 = tickets.iter().map(|&t| t as f64).sum();
            let total_g: u64 = acc.values().sum();
            for (i, &t) in tickets.iter().enumerate() {
                let expected = total_g as f64 * t as f64 / total_t;
                let got = *acc.get(&(i as u32)).unwrap_or(&0) as f64;
                // Bounded lag: deviation stays within a few gang-quanta of
                // the proportional share over a long horizon.
                prop_assert!(
                    (got - expected).abs() <= (width as f64) * (tickets.len() as f64 + 2.0),
                    "client {i}: got {got}, expected {expected} (acc {acc:?})"
                );
            }
        }

        /// The plan never overcommits the server and never leaves a gap any
        /// skipped runnable client could fill (gang-aware policy).
        #[test]
        fn plan_is_feasible_and_gap_free(
            widths in proptest::collection::vec(1u32..8, 1..10),
            capacity in 8u32..16,
            rounds in 1usize..200,
        ) {
            let mut g = GangScheduler::new(capacity, GangPolicy::GangAware);
            for (i, &w) in widths.iter().enumerate() {
                g.join(i as u32, 100.0, w.min(capacity));
            }
            for _ in 0..rounds {
                let out = g.plan_round();
                prop_assert!(out.gpus_used <= capacity);
                prop_assert_eq!(out.gpus_used + out.gpus_idle, capacity);
                let min_skipped = g
                    .iter()
                    .filter(|(k, _, _, _)| !out.selected.contains(k))
                    .map(|(_, _, w, _)| w)
                    .min();
                if let Some(minw) = min_skipped {
                    prop_assert!(out.gpus_idle < minw, "gap {} fits skipped width {}", out.gpus_idle, minw);
                }
            }
        }

        /// The minimum-pass runnable client is always selected (the scan
        /// starts with the whole server free, so the head of the pass order
        /// always fits) — this is the gang-aware no-starvation guarantee.
        #[test]
        fn min_pass_client_is_always_selected(
            widths in proptest::collection::vec(1u32..8, 2..8),
            rounds in 1usize..300,
        ) {
            let mut g = GangScheduler::new(8, GangPolicy::GangAware);
            for (i, &w) in widths.iter().enumerate() {
                g.join(i as u32, 100.0, w);
            }
            for _ in 0..rounds {
                let head = g
                    .iter()
                    .min_by(|a, b| a.3.total_cmp(&b.3).then(a.0.cmp(&b.0)))
                    .map(|(k, _, _, _)| k)
                    .unwrap();
                let out = g.plan_round();
                prop_assert!(
                    out.selected.contains(&head),
                    "min-pass client {head} skipped (selected {:?})",
                    out.selected
                );
            }
        }

        /// No client starves: with equal tickets, every client runs at least
        /// once every few stride cycles over a long horizon.
        #[test]
        fn no_client_starves(
            widths in proptest::collection::vec(1u32..8, 2..8),
        ) {
            let mut g = GangScheduler::new(8, GangPolicy::GangAware);
            for (i, &w) in widths.iter().enumerate() {
                g.join(i as u32, 100.0, w);
            }
            let rounds = 2000usize;
            let mut runs: HashMap<u32, usize> = HashMap::new();
            for _ in 0..rounds {
                for k in g.plan_round().selected {
                    *runs.entry(k).or_insert(0) += 1;
                }
            }
            for i in 0..widths.len() as u32 {
                let r = *runs.get(&i).unwrap_or(&0);
                prop_assert!(
                    r >= rounds / 20,
                    "client {i} (width {}) ran only {r}/{rounds} rounds",
                    widths[i as usize]
                );
            }
        }

        /// Differential oracle: wherever `quiescent_rounds` grants a span,
        /// `fast_forward` must land on the byte-identical state that naive
        /// stepping produces, for every policy and random population.
        #[test]
        fn fast_forward_is_byte_identical_to_stepping(
            pop in proptest::collection::vec((1u32..500, 1u32..6), 1..8),
            capacity in 4u32..32,
            warmup in 0usize..10,
            k in 1u64..200,
            policy_ix in 0usize..3,
        ) {
            let policy = [
                GangPolicy::GangAware,
                GangPolicy::JobLevelStride,
                GangPolicy::StrictNoBackfill,
            ][policy_ix];
            let mut a = GangScheduler::new(capacity, policy);
            for (i, &(t, w)) in pop.iter().enumerate() {
                a.join(i as u32, t as f64 + 0.25, w.min(capacity));
            }
            let mut b = a.clone();
            for _ in 0..warmup {
                let _ = a.plan_round();
                let _ = b.plan_round();
            }
            let cached = a.plan_round().selected;
            prop_assert_eq!(&b.plan_round().selected, &cached);
            let j = a.quiescent_rounds(&cached, k);
            prop_assert!(j <= k);
            a.fast_forward(j);
            for _ in 0..j {
                prop_assert_eq!(&b.plan_round().selected, &cached);
            }
            let sa: Vec<_> = a.iter().map(|(c, t, w, p)| (c, t.to_bits(), w, p.to_bits())).collect();
            let sb: Vec<_> = b.iter().map(|(c, t, w, p)| (c, t.to_bits(), w, p.to_bits())).collect();
            prop_assert_eq!(sa, sb);
            prop_assert_eq!(a.global_pass.to_bits(), b.global_pass.to_bits());
            // And the next naive round agrees on both sides.
            prop_assert_eq!(a.plan_round().selected, b.plan_round().selected);
        }
    }
}
