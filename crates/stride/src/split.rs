//! Split (hierarchical) stride scheduling.
//!
//! Gandiva_fair enforces fairness **between users**, not between jobs: a user
//! who submits six jobs must not receive six times the share of a user with
//! one job. Split stride achieves this with a two-level ticket currency:
//! each user's weight is exchanged into job tickets, divided equally among
//! the user's current jobs on the server. Because gang-aware stride delivers
//! GPU-time proportional to tickets, the sum of a user's job shares equals
//! the user's weight share regardless of how many jobs carry it.
//!
//! Ticket exchange is recomputed on every membership or weight change, using
//! the underlying scheduler's debt-rescaling ticket modulation so changes
//! take effect smoothly.

use crate::gang::{GangPolicy, GangScheduler, RoundOutcome};
use std::collections::{BTreeMap, BTreeSet};

#[derive(Debug, Clone)]
struct UserEntry<J> {
    weight: f64,
    jobs: BTreeSet<J>,
}

/// A two-level proportional-share gang scheduler: users, then jobs.
///
/// # Examples
///
/// ```
/// use gfair_stride::{SplitStride, GangPolicy};
///
/// let mut s = SplitStride::new(4, GangPolicy::GangAware);
/// s.set_user_weight("alice", 100.0);
/// s.set_user_weight("bob", 100.0);
/// // Alice floods the server with four jobs; Bob has one.
/// for j in 0..4 {
///     s.add_job("alice", j, 1);
/// }
/// s.add_job("bob", 99, 2);
/// let mut user_time = std::collections::HashMap::new();
/// for _ in 0..1000 {
///     for j in s.plan_round().selected {
///         let u = s.user_of(j).unwrap();
///         *user_time.entry(u).or_insert(0u64) += s.width_of(j).unwrap() as u64;
///     }
/// }
/// // Equal weights => equal user GPU-time despite 4-vs-1 job counts.
/// let a = user_time[&"alice"] as f64;
/// let b = user_time[&"bob"] as f64;
/// assert!((a - b).abs() / a < 0.05, "alice {a} bob {b}");
/// ```
#[derive(Debug, Clone)]
pub struct SplitStride<U, J> {
    inner: GangScheduler<J>,
    users: BTreeMap<U, UserEntry<J>>,
    job_user: BTreeMap<J, U>,
}

impl<U: Copy + Ord, J: Copy + Ord> SplitStride<U, J> {
    /// Creates a split-stride scheduler for a server with `capacity` GPUs.
    pub fn new(capacity: u32, policy: GangPolicy) -> Self {
        SplitStride {
            inner: GangScheduler::new(capacity, policy),
            users: BTreeMap::new(),
            job_user: BTreeMap::new(),
        }
    }

    /// Server GPU capacity.
    pub fn capacity(&self) -> u32 {
        self.inner.capacity()
    }

    /// Number of jobs currently registered.
    pub fn num_jobs(&self) -> usize {
        self.job_user.len()
    }

    /// Number of users with at least one job or an explicit weight.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// Sets (or creates) a user's weight. Job tickets of that user are
    /// re-exchanged immediately.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not strictly positive and finite.
    pub fn set_user_weight(&mut self, u: U, weight: f64) {
        assert!(
            weight.is_finite() && weight > 0.0,
            "user weight must be positive and finite, got {weight}"
        );
        if self.users.get(&u).map(|e| e.weight) == Some(weight) {
            // Re-applying the current weight re-derives the same per-job
            // share, so the exchange is a no-op; skip the allocation and the
            // per-job ticket refresh entirely.
            return;
        }
        let entry = self.users.entry(u).or_insert_with(|| UserEntry {
            weight,
            jobs: BTreeSet::new(),
        });
        entry.weight = weight;
        self.reexchange(u);
    }

    /// Current weight of a user, if known.
    pub fn user_weight(&self, u: U) -> Option<f64> {
        self.users.get(&u).map(|e| e.weight)
    }

    /// Adds a job of `width` GPUs for user `u`.
    ///
    /// The user must have been given a weight first.
    ///
    /// # Panics
    ///
    /// Panics if the user has no weight, the job is already present, or the
    /// gang does not fit the server.
    pub fn add_job(&mut self, u: U, j: J, width: u32) {
        assert!(
            self.users.contains_key(&u),
            "set_user_weight must be called before add_job"
        );
        assert!(
            !self.job_user.contains_key(&j),
            "job added twice to split stride"
        );
        let entry = self.users.get_mut(&u).expect("user exists");
        entry.jobs.insert(j);
        let share = entry.weight / entry.jobs.len() as f64;
        self.inner.join(j, share, width);
        self.job_user.insert(j, u);
        self.reexchange(u);
    }

    /// Removes a job. Returns true if it was present. The owning user's
    /// remaining jobs absorb its tickets; a user left with no jobs keeps its
    /// weight and simply stops competing (work conservation).
    pub fn remove_job(&mut self, j: J) -> bool {
        let Some(u) = self.job_user.remove(&j) else {
            return false;
        };
        self.inner.leave(j);
        if let Some(entry) = self.users.get_mut(&u) {
            entry.jobs.remove(&j);
        }
        self.reexchange(u);
        true
    }

    /// Removes a user and all of their jobs. Returns the number of jobs
    /// removed.
    pub fn remove_user(&mut self, u: U) -> usize {
        let Some(entry) = self.users.remove(&u) else {
            return 0;
        };
        let n = entry.jobs.len();
        for j in entry.jobs {
            self.inner.leave(j);
            self.job_user.remove(&j);
        }
        n
    }

    /// Marks a job runnable or suspended.
    ///
    /// # Panics
    ///
    /// Panics if the job is unknown.
    pub fn set_job_runnable(&mut self, j: J, runnable: bool) {
        self.inner.set_runnable(j, runnable);
    }

    /// The user owning job `j`, if registered.
    pub fn user_of(&self, j: J) -> Option<U> {
        self.job_user.get(&j).copied()
    }

    /// Gang width of job `j`, if registered.
    pub fn width_of(&self, j: J) -> Option<u32> {
        self.inner.width_of(j)
    }

    /// Effective job-level tickets of `j` after the currency exchange.
    pub fn job_tickets(&self, j: J) -> Option<f64> {
        self.inner.tickets_of(j)
    }

    /// Stride pass of job `j`, if registered.
    pub fn job_pass(&self, j: J) -> Option<f64> {
        self.inner.pass_of(j)
    }

    /// The user's effective stride pass on this server: the minimum pass
    /// among their registered jobs (lower pass runs sooner). `None` for
    /// unknown users or users with no jobs here.
    pub fn user_pass(&self, u: U) -> Option<f64> {
        self.users
            .get(&u)?
            .jobs
            .iter()
            .filter_map(|&j| self.inner.pass_of(j))
            .min_by(f64::total_cmp)
    }

    /// Calls `f(user, pass)` for every user with at least one registered
    /// job here, in user order, with the same effective pass
    /// [`user_pass`](Self::user_pass) would report. One walk over the user
    /// table, for callers that need every user's pass rather than one.
    pub fn for_each_user_pass(&self, mut f: impl FnMut(U, f64)) {
        for (&u, entry) in &self.users {
            if let Some(pass) = entry
                .jobs
                .iter()
                .filter_map(|&j| self.inner.pass_of(j))
                .min_by(f64::total_cmp)
            {
                f(u, pass);
            }
        }
    }

    /// Plans one quantum (see [`GangScheduler::plan_round`]).
    pub fn plan_round(&mut self) -> RoundOutcome<J> {
        self.inner.plan_round()
    }

    /// Returns how many consecutive rounds (at most `k`) the next calls to
    /// [`plan_round`](Self::plan_round) would select exactly `expected`, in
    /// that order (see [`GangScheduler::quiescent_rounds`]). The user-level
    /// currency is only touched by membership and weight changes, never by
    /// planning, so quiescence is decided entirely by the inner gang
    /// scheduler.
    pub fn quiescent_rounds(&self, expected: &[J], k: u64) -> u64 {
        self.inner.quiescent_rounds(expected, k)
    }

    /// Replays `j` quiescent rounds in one step (see
    /// [`GangScheduler::fast_forward`]).
    pub fn fast_forward(&mut self, j: u64) {
        self.inner.fast_forward(j)
    }

    /// All registered jobs, in key order.
    pub fn jobs(&self) -> impl Iterator<Item = J> + '_ {
        self.job_user.keys().copied()
    }

    /// All users with a weight, in key order.
    pub fn users(&self) -> impl Iterator<Item = U> + '_ {
        self.users.keys().copied()
    }

    /// Jobs of user `u`, in key order.
    pub fn jobs_of(&self, u: U) -> Vec<J> {
        self.users
            .get(&u)
            .map(|e| e.jobs.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Re-divides a user's weight equally among their current jobs.
    fn reexchange(&mut self, u: U) {
        let Some(entry) = self.users.get(&u) else {
            return;
        };
        if entry.jobs.is_empty() {
            return;
        }
        let share = entry.weight / entry.jobs.len() as f64;
        let jobs: Vec<J> = entry.jobs.iter().copied().collect();
        for j in jobs {
            self.inner.set_tickets(j, share);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Accumulates per-user GPU-quanta over `rounds`.
    fn user_gpu_time(s: &mut SplitStride<u32, u32>, rounds: usize) -> HashMap<u32, u64> {
        let mut acc = HashMap::new();
        for _ in 0..rounds {
            for j in s.plan_round().selected {
                let u = s.user_of(j).unwrap();
                *acc.entry(u).or_insert(0) += s.width_of(j).unwrap() as u64;
            }
        }
        acc
    }

    #[test]
    fn user_pass_is_the_min_over_the_users_jobs() {
        let mut s = SplitStride::new(4, GangPolicy::GangAware);
        s.set_user_weight(0, 100.0);
        s.add_job(0, 1, 1);
        s.add_job(0, 2, 1);
        assert_eq!(s.user_pass(9), None, "unknown user has no pass");
        let u = s.user_pass(0).expect("registered user");
        let min_job = [1, 2]
            .iter()
            .filter_map(|&j| s.job_pass(j))
            .min_by(f64::total_cmp)
            .unwrap();
        assert_eq!(u, min_job);
        // After some rounds the invariant still holds.
        for _ in 0..5 {
            s.plan_round();
        }
        let u = s.user_pass(0).expect("registered user");
        let min_job = [1, 2]
            .iter()
            .filter_map(|&j| s.job_pass(j))
            .min_by(f64::total_cmp)
            .unwrap();
        assert_eq!(u, min_job);
    }

    #[test]
    fn job_count_does_not_inflate_user_share() {
        let mut s = SplitStride::new(4, GangPolicy::GangAware);
        s.set_user_weight(0, 100.0);
        s.set_user_weight(1, 100.0);
        for j in 0..6 {
            s.add_job(0, j, 1);
        }
        s.add_job(1, 100, 1);
        let acc = user_gpu_time(&mut s, 1000);
        // User 1's single job can consume at most 1 GPU/round = 1000; its
        // fair half of 4 GPUs (2000) is infeasible, so the correct outcome
        // is user 1 maxed at ~1000 and user 0 taking the surplus.
        assert!(acc[&1] as f64 > 950.0, "single-job user starved: {acc:?}");
        assert!(
            acc[&0] as f64 > 2900.0,
            "surplus not redistributed: {acc:?}"
        );
    }

    #[test]
    fn equal_weights_equal_user_time_when_feasible() {
        let mut s = SplitStride::new(4, GangPolicy::GangAware);
        s.set_user_weight(0, 100.0);
        s.set_user_weight(1, 100.0);
        for j in 0..4 {
            s.add_job(0, j, 1);
        }
        s.add_job(1, 100, 2);
        let acc = user_gpu_time(&mut s, 1000);
        let a = acc[&0] as f64;
        let b = acc[&1] as f64;
        assert!((a - b).abs() / a < 0.05, "user shares diverged: {a} vs {b}");
    }

    #[test]
    fn weights_skew_user_time() {
        let mut s = SplitStride::new(4, GangPolicy::GangAware);
        s.set_user_weight(0, 300.0);
        s.set_user_weight(1, 100.0);
        for j in 0..3 {
            s.add_job(0, j, 1);
        }
        for j in 10..13 {
            s.add_job(1, j, 1);
        }
        let acc = user_gpu_time(&mut s, 1000);
        let ratio = acc[&0] as f64 / acc[&1] as f64;
        assert!(
            (ratio - 3.0).abs() < 0.3,
            "expected 3x for 3x weight, got {ratio}"
        );
    }

    #[test]
    fn job_tickets_are_weight_divided_by_count() {
        let mut s = SplitStride::new(8, GangPolicy::GangAware);
        s.set_user_weight(0, 120.0);
        s.add_job(0, 1, 1);
        assert_eq!(s.job_tickets(1), Some(120.0));
        s.add_job(0, 2, 1);
        s.add_job(0, 3, 1);
        assert_eq!(s.job_tickets(1), Some(40.0));
        assert_eq!(s.job_tickets(3), Some(40.0));
        s.remove_job(2);
        assert_eq!(s.job_tickets(1), Some(60.0));
    }

    #[test]
    fn removing_last_job_keeps_user() {
        let mut s = SplitStride::new(4, GangPolicy::GangAware);
        s.set_user_weight(0, 100.0);
        s.add_job(0, 1, 1);
        assert!(s.remove_job(1));
        assert_eq!(s.num_jobs(), 0);
        assert_eq!(s.num_users(), 1);
        assert_eq!(s.user_weight(0), Some(100.0));
        // The user can come back without resetting the weight.
        s.add_job(0, 2, 1);
        assert_eq!(s.job_tickets(2), Some(100.0));
    }

    #[test]
    fn remove_user_drops_all_jobs() {
        let mut s = SplitStride::new(8, GangPolicy::GangAware);
        s.set_user_weight(0, 100.0);
        s.set_user_weight(1, 100.0);
        s.add_job(0, 1, 1);
        s.add_job(0, 2, 1);
        s.add_job(1, 3, 1);
        assert_eq!(s.remove_user(0), 2);
        assert_eq!(s.num_jobs(), 1);
        assert_eq!(s.user_of(1), None);
        assert_eq!(s.user_of(3), Some(1));
    }

    #[test]
    fn idle_user_capacity_is_redistributed() {
        // User 1 has weight but no jobs: user 0 gets everything.
        let mut s = SplitStride::new(2, GangPolicy::GangAware);
        s.set_user_weight(0, 100.0);
        s.set_user_weight(1, 100.0);
        s.add_job(0, 1, 1);
        s.add_job(0, 2, 1);
        let acc = user_gpu_time(&mut s, 100);
        assert_eq!(acc[&0], 200);
    }

    #[test]
    fn weight_change_applies_to_existing_jobs() {
        let mut s = SplitStride::new(2, GangPolicy::GangAware);
        s.set_user_weight(0, 100.0);
        s.set_user_weight(1, 100.0);
        s.add_job(0, 1, 1);
        s.add_job(1, 2, 1);
        let _ = user_gpu_time(&mut s, 100);
        s.set_user_weight(0, 300.0);
        assert_eq!(s.job_tickets(1), Some(300.0));
        // Both jobs are single-GPU on a 2-GPU server: both always run, so
        // shares only diverge under contention; check tickets instead.
        assert_eq!(s.job_tickets(2), Some(100.0));
    }

    #[test]
    fn suspended_job_yields_to_siblings() {
        let mut s = SplitStride::new(1, GangPolicy::GangAware);
        s.set_user_weight(0, 100.0);
        s.add_job(0, 1, 1);
        s.add_job(0, 2, 1);
        s.set_job_runnable(1, false);
        for _ in 0..10 {
            assert_eq!(s.plan_round().selected, vec![2]);
        }
    }

    #[test]
    #[should_panic(expected = "set_user_weight must be called")]
    fn job_without_user_weight_panics() {
        let mut s = SplitStride::new(4, GangPolicy::GangAware);
        s.add_job(0, 1, 1);
    }

    #[test]
    #[should_panic(expected = "added twice")]
    fn duplicate_job_panics() {
        let mut s = SplitStride::new(4, GangPolicy::GangAware);
        s.set_user_weight(0, 100.0);
        s.add_job(0, 1, 1);
        s.add_job(0, 1, 1);
    }

    #[test]
    fn reapplying_a_weight_does_not_drift_job_passes() {
        let mut s = SplitStride::new(4, GangPolicy::GangAware);
        s.set_user_weight(0, 100.0);
        s.add_job(0, 1, 1);
        s.add_job(0, 2, 2);
        for _ in 0..9 {
            s.plan_round();
        }
        let before: Vec<_> = [1, 2]
            .iter()
            .map(|&j| (s.job_tickets(j).unwrap(), s.job_pass(j).unwrap().to_bits()))
            .collect();
        // Same weight, over and over — the round-by-round refresh pattern.
        for _ in 0..5 {
            s.set_user_weight(0, 100.0);
        }
        let after: Vec<_> = [1, 2]
            .iter()
            .map(|&j| (s.job_tickets(j).unwrap(), s.job_pass(j).unwrap().to_bits()))
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn fast_forward_delegates_to_inner_scheduler() {
        let mut a = SplitStride::new(8, GangPolicy::GangAware);
        a.set_user_weight(0, 100.0);
        a.set_user_weight(1, 60.0);
        a.add_job(0, 1, 2);
        a.add_job(0, 2, 1);
        a.add_job(1, 3, 3);
        let mut b = a.clone();
        let mut ff_total = 0u64;
        for _ in 0..20 {
            let cached = a.plan_round().selected;
            assert_eq!(b.plan_round().selected, cached);
            let j = a.quiescent_rounds(&cached, 40);
            a.fast_forward(j);
            for _ in 0..j {
                assert_eq!(b.plan_round().selected, cached);
            }
            for jid in [1, 2, 3] {
                assert_eq!(
                    a.job_pass(jid).unwrap().to_bits(),
                    b.job_pass(jid).unwrap().to_bits(),
                    "job {jid} pass diverged"
                );
            }
            ff_total += j;
        }
        assert!(ff_total >= 1, "all jobs fit: some span must be granted");
    }

    #[test]
    fn remove_unknown_job_returns_false() {
        let mut s = SplitStride::<u32, u32>::new(4, GangPolicy::GangAware);
        assert!(!s.remove_job(9));
        assert_eq!(s.remove_user(9), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    proptest! {
        /// Users with equal weights and single-GPU jobs receive equal
        /// GPU-time regardless of how many jobs each submits, as long as
        /// every user can feasibly consume its share.
        #[test]
        fn equal_weight_users_equal_time(
            job_counts in proptest::collection::vec(1usize..5, 2..4),
        ) {
            // Capacity chosen so each user's share <= their narrowest
            // feasible consumption (every user has >= 1 job and capacity =
            // number of users means share = 1 GPU per user per round).
            let capacity = job_counts.len() as u32;
            let mut s = SplitStride::new(capacity, GangPolicy::GangAware);
            let mut next_job = 0u32;
            for (u, &n) in job_counts.iter().enumerate() {
                s.set_user_weight(u as u32, 100.0);
                for _ in 0..n {
                    s.add_job(u as u32, next_job, 1);
                    next_job += 1;
                }
            }
            let rounds = 1500usize;
            let mut acc: HashMap<u32, u64> = HashMap::new();
            for _ in 0..rounds {
                for j in s.plan_round().selected {
                    let u = s.user_of(j).unwrap();
                    *acc.entry(u).or_insert(0) += 1;
                }
            }
            let expected = rounds as f64; // 1 GPU per round per user
            for u in 0..job_counts.len() as u32 {
                let got = *acc.get(&u).unwrap_or(&0) as f64;
                prop_assert!(
                    (got - expected).abs() / expected < 0.05,
                    "user {u}: got {got}, expected {expected} (jobs {job_counts:?})"
                );
            }
        }
    }
}
