//! Classic stride scheduling.
//!
//! Stride scheduling (Waldspurger & Weihl, 1995) is a deterministic
//! proportional-share algorithm: each client holds *tickets*; a client's
//! *stride* is `STRIDE1 / tickets`; each client carries a *pass* value that
//! advances by its stride per quantum of service received; the scheduler
//! always serves the client with the minimum pass. Over any interval, the
//! service received by competing clients is proportional to their tickets
//! with an absolute error of at most one quantum per client.
//!
//! Dynamic behaviour follows the original paper: a joining client starts at
//! the *global pass* (the ticket-weighted virtual time), a leaving client
//! remembers its pending "remain" debt, and ticket changes rescale that debt
//! so a client can neither hoard nor lose service by modulating tickets.

use crate::STRIDE1;
use std::collections::BTreeMap;

/// Per-client bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Client {
    tickets: f64,
    pass: f64,
}

impl Client {
    fn stride(&self) -> f64 {
        STRIDE1 / self.tickets
    }
}

/// A deterministic proportional-share scheduler over clients of type `K`.
///
/// # Examples
///
/// ```
/// use gfair_stride::StrideScheduler;
///
/// let mut s = StrideScheduler::new();
/// s.join("a", 100.0);
/// s.join("b", 300.0);
/// let mut served = std::collections::HashMap::new();
/// for _ in 0..400 {
///     let k = s.pick().unwrap();
///     s.run(k, 1.0);
///     *served.entry(k).or_insert(0) += 1;
/// }
/// // b holds 3x the tickets of a, so it receives ~3x the quanta.
/// assert_eq!(served[&"b"], 300);
/// assert_eq!(served[&"a"], 100);
/// ```
#[derive(Debug, Clone)]
pub struct StrideScheduler<K> {
    clients: BTreeMap<K, Client>,
    /// Ticket-weighted virtual time; new clients start here.
    global_pass: f64,
    total_tickets: f64,
}

impl<K: Copy + Ord> StrideScheduler<K> {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        StrideScheduler {
            clients: BTreeMap::new(),
            global_pass: 0.0,
            total_tickets: 0.0,
        }
    }

    /// Number of clients currently competing.
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// Returns true if no clients are registered.
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    /// The current global pass (ticket-weighted virtual time).
    pub fn global_pass(&self) -> f64 {
        self.global_pass
    }

    /// Total tickets across all clients.
    pub fn total_tickets(&self) -> f64 {
        self.total_tickets
    }

    /// Pass value of a client, if registered.
    pub fn pass_of(&self, k: K) -> Option<f64> {
        self.clients.get(&k).map(|c| c.pass)
    }

    /// Tickets of a client, if registered.
    pub fn tickets_of(&self, k: K) -> Option<f64> {
        self.clients.get(&k).map(|c| c.tickets)
    }

    /// Registers a client with the given tickets.
    ///
    /// The client starts one stride ahead of the global pass, as in the
    /// original algorithm, so it neither monopolizes the processor on entry
    /// nor waits more than one of its own strides.
    ///
    /// # Panics
    ///
    /// Panics if `tickets` is not strictly positive and finite, or if the
    /// client is already registered.
    pub fn join(&mut self, k: K, tickets: f64) {
        assert!(
            tickets.is_finite() && tickets > 0.0,
            "tickets must be positive and finite, got {tickets}"
        );
        let pass = self.global_pass + STRIDE1 / tickets;
        let prev = self.clients.insert(k, Client { tickets, pass });
        assert!(prev.is_none(), "client joined twice");
        self.total_tickets += tickets;
    }

    /// Removes a client. Returns true if it was registered.
    pub fn leave(&mut self, k: K) -> bool {
        match self.clients.remove(&k) {
            Some(c) => {
                self.total_tickets -= c.tickets;
                if self.clients.is_empty() {
                    self.total_tickets = 0.0;
                }
                true
            }
            None => false,
        }
    }

    /// Changes a client's tickets, rescaling its pending pass debt so the
    /// change takes effect smoothly (Waldspurger's ticket modulation).
    ///
    /// # Panics
    ///
    /// Panics if the client is unknown or `tickets` is invalid.
    pub fn set_tickets(&mut self, k: K, tickets: f64) {
        assert!(
            tickets.is_finite() && tickets > 0.0,
            "tickets must be positive and finite, got {tickets}"
        );
        let global = self.global_pass;
        let c = self.clients.get_mut(&k).expect("unknown client");
        if tickets == c.tickets {
            // An unchanged ticket count must be a true no-op: re-deriving the
            // pass through `global + (pass - global)` is not an f64 identity
            // and would drift the pass on every refresh.
            return;
        }
        let remain = c.pass - global;
        // Scale the remaining debt by old_stride_ratio = new_stride/old_stride.
        let scaled = remain * (c.tickets / tickets);
        self.total_tickets += tickets - c.tickets;
        c.tickets = tickets;
        c.pass = global + scaled;
    }

    /// Returns the client with the minimum pass (ties broken by key order),
    /// without advancing any state.
    pub fn pick(&self) -> Option<K> {
        self.clients
            .iter()
            .min_by(|(ka, a), (kb, b)| a.pass.total_cmp(&b.pass).then(ka.cmp(kb)))
            .map(|(k, _)| *k)
    }

    /// Charges `quanta` quanta of service to client `k` and advances the
    /// global pass correspondingly.
    ///
    /// `quanta` may be fractional (e.g. a job that finished mid-quantum).
    ///
    /// # Panics
    ///
    /// Panics if the client is unknown or `quanta` is negative/not finite.
    pub fn run(&mut self, k: K, quanta: f64) {
        assert!(
            quanta.is_finite() && quanta >= 0.0,
            "quanta must be non-negative and finite, got {quanta}"
        );
        let c = self.clients.get_mut(&k).expect("unknown client");
        c.pass += c.stride() * quanta;
        self.global_pass += STRIDE1 * quanta / self.total_tickets;
    }

    /// Returns how many consecutive `pick()`-then-`run(_, quanta)` rounds
    /// (at most `k`) would serve the same client. Does not mutate state.
    ///
    /// Only the served client's pass moves, so the span ends exactly when
    /// its advancing pass overtakes the closest contender under `pick`'s
    /// `(pass, key)` order. The returned `j` backs
    /// [`fast_forward`](Self::fast_forward): `fast_forward(quanta, j)` then
    /// leaves the scheduler byte-identical to `j` stepped rounds.
    pub fn quiescent_rounds(&self, quanta: f64, k: u64) -> u64 {
        if k == 0 {
            return 0;
        }
        let Some(first) = self.pick() else {
            return 0;
        };
        if self.clients.len() == 1 {
            return k;
        }
        let c = &self.clients[&first];
        let delta = c.stride() * quanta;
        let mut pass = c.pass;
        // Closest contender among the others; their passes do not move.
        let (rk, rp) = self
            .clients
            .iter()
            .filter(|(k2, _)| **k2 != first)
            .min_by(|(ka, a), (kb, b)| a.pass.total_cmp(&b.pass).then(ka.cmp(kb)))
            .map(|(k2, c2)| (*k2, c2.pass))
            .expect("more than one client");
        let mut j = 1u64;
        while j < k {
            pass += delta;
            let still_first = match pass.total_cmp(&rp) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Equal => first < rk,
                std::cmp::Ordering::Greater => false,
            };
            if !still_first {
                break;
            }
            j += 1;
        }
        j
    }

    /// Replays `j` quiescent rounds in one step: charges `quanta` to the
    /// current minimum-pass client `j` times.
    ///
    /// The caller must have verified `j <=`
    /// [`quiescent_rounds`](Self::quiescent_rounds) for the current state;
    /// the post-call state is then byte-identical to `j` stepped rounds
    /// (the pass and global-pass accumulators receive the same additions in
    /// the same order).
    ///
    /// # Panics
    ///
    /// Panics if the scheduler is empty (with `j > 0`) or `quanta` is
    /// negative/not finite.
    pub fn fast_forward(&mut self, quanta: f64, j: u64) {
        assert!(
            quanta.is_finite() && quanta >= 0.0,
            "quanta must be non-negative and finite, got {quanta}"
        );
        if j == 0 {
            return;
        }
        let first = self.pick().expect("fast_forward on empty scheduler");
        let c = self.clients.get_mut(&first).expect("picked client exists");
        let delta = c.stride() * quanta;
        for _ in 0..j {
            c.pass += delta;
        }
        let g = STRIDE1 * quanta / self.total_tickets;
        for _ in 0..j {
            self.global_pass += g;
        }
    }

    /// Iterates over `(client, tickets, pass)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (K, f64, f64)> + '_ {
        self.clients.iter().map(|(k, c)| (*k, c.tickets, c.pass))
    }
}

impl<K: Copy + Ord> Default for StrideScheduler<K> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Runs `rounds` quanta and returns quanta served per client.
    fn serve(s: &mut StrideScheduler<u32>, rounds: usize) -> HashMap<u32, usize> {
        let mut served = HashMap::new();
        for _ in 0..rounds {
            let k = s.pick().expect("no client to pick");
            s.run(k, 1.0);
            *served.entry(k).or_insert(0) += 1;
        }
        served
    }

    #[test]
    fn equal_tickets_equal_service() {
        let mut s = StrideScheduler::new();
        s.join(1, 100.0);
        s.join(2, 100.0);
        let served = serve(&mut s, 1000);
        assert_eq!(served[&1], 500);
        assert_eq!(served[&2], 500);
    }

    #[test]
    fn service_is_ticket_proportional() {
        let mut s = StrideScheduler::new();
        s.join(1, 100.0);
        s.join(2, 200.0);
        s.join(3, 700.0);
        let served = serve(&mut s, 1000);
        assert_eq!(served[&1], 100);
        assert_eq!(served[&2], 200);
        assert_eq!(served[&3], 700);
    }

    #[test]
    fn lag_is_bounded_by_one_quantum() {
        // Stride scheduling guarantees |service - entitlement| < 1 quantum.
        let mut s = StrideScheduler::new();
        s.join(1, 300.0);
        s.join(2, 100.0);
        let mut served = HashMap::new();
        for round in 1..=400usize {
            let k = s.pick().unwrap();
            s.run(k, 1.0);
            *served.entry(k).or_insert(0usize) += 1;
            let e1 = round as f64 * 0.75;
            let got1 = *served.get(&1).unwrap_or(&0) as f64;
            assert!(
                (got1 - e1).abs() <= 1.0 + 1e-9,
                "lag exceeded at round {round}: got {got1}, expected {e1}"
            );
        }
    }

    #[test]
    fn late_joiner_starts_at_global_pass() {
        let mut s = StrideScheduler::new();
        s.join(1, 100.0);
        for _ in 0..100 {
            let k = s.pick().unwrap();
            s.run(k, 1.0);
        }
        s.join(2, 100.0);
        // The newcomer must not be owed 100 quanta of back service...
        let served = serve(&mut s, 100);
        assert!(served[&2] <= 52, "late joiner monopolized: {:?}", served);
        // ...but must promptly receive its ongoing fair share.
        assert!(served[&2] >= 48, "late joiner starved: {served:?}");
    }

    #[test]
    fn leaver_frees_capacity_for_remaining() {
        let mut s = StrideScheduler::new();
        s.join(1, 100.0);
        s.join(2, 100.0);
        let _ = serve(&mut s, 100);
        assert!(s.leave(2));
        let served = serve(&mut s, 50);
        assert_eq!(served[&1], 50);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn leave_unknown_returns_false() {
        let mut s = StrideScheduler::<u32>::new();
        assert!(!s.leave(9));
    }

    #[test]
    fn ticket_modulation_changes_share() {
        let mut s = StrideScheduler::new();
        s.join(1, 100.0);
        s.join(2, 100.0);
        let _ = serve(&mut s, 200);
        s.set_tickets(1, 300.0);
        let served = serve(&mut s, 400);
        // After modulation 1 holds 75% of tickets.
        assert!(
            (served[&1] as f64 - 300.0).abs() <= 2.0,
            "modulated share wrong: {served:?}"
        );
    }

    #[test]
    fn ticket_modulation_rescales_debt() {
        let mut s = StrideScheduler::new();
        s.join(1, 100.0);
        let remain_before = s.pass_of(1).unwrap() - s.global_pass();
        s.set_tickets(1, 200.0);
        let remain_after = s.pass_of(1).unwrap() - s.global_pass();
        // Doubling tickets halves the stride and thus halves pending debt.
        assert!((remain_after - remain_before / 2.0).abs() < 1e-6);
    }

    #[test]
    fn ties_break_deterministically_by_key() {
        let mut s = StrideScheduler::new();
        s.join(5, 100.0);
        s.join(3, 100.0);
        // Both start with identical pass; the smaller key must win.
        assert_eq!(s.pick(), Some(3));
    }

    #[test]
    fn fractional_quanta_accumulate() {
        let mut s = StrideScheduler::new();
        s.join(1, 100.0);
        s.join(2, 100.0);
        s.run(1, 0.5);
        // Client 2 now trails and must be picked.
        assert_eq!(s.pick(), Some(2));
    }

    #[test]
    #[should_panic(expected = "joined twice")]
    fn double_join_panics() {
        let mut s = StrideScheduler::new();
        s.join(1, 100.0);
        s.join(1, 100.0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_tickets_panics() {
        let mut s = StrideScheduler::new();
        s.join(1, 0.0);
    }

    #[test]
    fn empty_scheduler_picks_none() {
        let s = StrideScheduler::<u32>::new();
        assert_eq!(s.pick(), None);
        assert_eq!(s.total_tickets(), 0.0);
    }

    #[test]
    fn set_tickets_with_unchanged_count_is_a_true_noop() {
        let mut s = StrideScheduler::new();
        s.join(1, 100.0);
        s.join(2, 40.0);
        let _ = serve(&mut s, 13);
        let before: Vec<_> = s.iter().map(|(k, t, p)| (k, t, p.to_bits())).collect();
        s.set_tickets(1, 100.0);
        s.set_tickets(2, 40.0);
        let after: Vec<_> = s.iter().map(|(k, t, p)| (k, t, p.to_bits())).collect();
        assert_eq!(before, after, "unchanged tickets must not drift passes");
    }

    #[test]
    fn fast_forward_matches_stepping() {
        let mut a = StrideScheduler::new();
        a.join(1, 300.0);
        a.join(2, 100.0);
        a.join(3, 55.5);
        let mut b = a.clone();
        let _ = serve(&mut b, 0);
        for _ in 0..200 {
            let j = a.quiescent_rounds(1.0, 64);
            assert!(j >= 1, "the picked client always serves at least once");
            let picked = a.pick().unwrap();
            a.fast_forward(1.0, j);
            for _ in 0..j {
                let k = b.pick().unwrap();
                assert_eq!(k, picked, "stepping diverged from the span");
                b.run(k, 1.0);
            }
            let sa: Vec<_> = a.iter().map(|(k, t, p)| (k, t, p.to_bits())).collect();
            let sb: Vec<_> = b.iter().map(|(k, t, p)| (k, t, p.to_bits())).collect();
            assert_eq!(sa, sb);
            assert_eq!(a.global_pass().to_bits(), b.global_pass().to_bits());
        }
    }

    #[test]
    fn single_client_is_quiescent_for_any_horizon() {
        let mut s = StrideScheduler::new();
        s.join(7, 10.0);
        assert_eq!(s.quiescent_rounds(1.0, 1000), 1000);
        let mut naive = s.clone();
        s.fast_forward(1.0, 1000);
        for _ in 0..1000 {
            naive.run(7, 1.0);
        }
        assert_eq!(
            s.pass_of(7).unwrap().to_bits(),
            naive.pass_of(7).unwrap().to_bits()
        );
    }

    #[test]
    fn empty_scheduler_declines_fast_forward() {
        let s = StrideScheduler::<u32>::new();
        assert_eq!(s.quiescent_rounds(1.0, 10), 0);
    }

    #[test]
    fn iter_reports_state_in_key_order() {
        let mut s = StrideScheduler::new();
        s.join(2, 50.0);
        s.join(1, 100.0);
        let keys: Vec<u32> = s.iter().map(|(k, _, _)| k).collect();
        assert_eq!(keys, vec![1, 2]);
        let tickets: Vec<f64> = s.iter().map(|(_, t, _)| t).collect();
        assert_eq!(tickets, vec![100.0, 50.0]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    proptest! {
        /// Over any horizon, service is ticket-proportional within an
        /// absolute lag of one quantum per client (stride's core guarantee).
        #[test]
        fn proportionality_holds(
            tickets in proptest::collection::vec(1u32..=50, 2..6),
            rounds in 100usize..800,
        ) {
            let mut s = StrideScheduler::new();
            let total: u64 = tickets.iter().map(|&t| t as u64).sum();
            for (i, &t) in tickets.iter().enumerate() {
                s.join(i as u32, t as f64);
            }
            let mut served: HashMap<u32, usize> = HashMap::new();
            for _ in 0..rounds {
                let k = s.pick().unwrap();
                s.run(k, 1.0);
                *served.entry(k).or_insert(0) += 1;
            }
            for (i, &t) in tickets.iter().enumerate() {
                let expected = rounds as f64 * t as f64 / total as f64;
                let got = *served.get(&(i as u32)).unwrap_or(&0) as f64;
                prop_assert!(
                    (got - expected).abs() <= tickets.len() as f64,
                    "client {i}: got {got}, expected {expected}"
                );
            }
        }

        /// Join/leave churn never panics and total tickets stays consistent.
        #[test]
        fn churn_keeps_totals_consistent(ops in proptest::collection::vec((0u8..3, 0u32..8, 1u32..100), 1..200)) {
            let mut s = StrideScheduler::new();
            let mut live: HashMap<u32, f64> = HashMap::new();
            for (op, k, t) in ops {
                match op {
                    0 => {
                        if let std::collections::hash_map::Entry::Vacant(e) = live.entry(k) {
                            s.join(k, t as f64);
                            e.insert(t as f64);
                        }
                    }
                    1 => {
                        s.leave(k);
                        live.remove(&k);
                    }
                    _ => {
                        if let Some(k2) = s.pick() {
                            s.run(k2, 1.0);
                        }
                    }
                }
                let expect: f64 = live.values().sum();
                prop_assert!((s.total_tickets() - expect).abs() < 1e-6);
                prop_assert_eq!(s.len(), live.len());
            }
        }
    }
}
