//! A Gandiva-style efficiency-only scheduler.
//!
//! Models the predecessor system the paper builds on: jobs are packed onto
//! the least-loaded server and time-sliced with suspend/resume, maximizing
//! utilization — but the time slicing is a plain per-server round-robin over
//! *jobs*, with no notion of users or tickets. A user who submits ten jobs
//! gets ten slots; single-job users are crowded out. This is the
//! "efficiency without fairness" pole of the comparison experiments.

use crate::util::least_loaded_fitting;
use gfair_sim::{Action, ClusterScheduler, RoundPlan, SimView};
use gfair_types::{JobId, ServerId};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Efficiency-only packing + per-server round-robin time slicing.
#[derive(Debug, Default)]
pub struct GandivaLike {
    /// Rotation order per server. Jobs are appended on placement and the
    /// head rotates each round, giving every *job* (not user) an equal turn.
    rotation: BTreeMap<ServerId, VecDeque<JobId>>,
    inflight: BTreeMap<ServerId, u32>,
}

impl GandivaLike {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ClusterScheduler for GandivaLike {
    fn name(&self) -> &'static str {
        "gandiva-like"
    }

    fn on_job_arrival(&mut self, view: &SimView<'_>, job: JobId) -> Vec<Action> {
        let gang = view.job(job).expect("known job").gang;
        match least_loaded_fitting(view, &self.inflight, gang) {
            Some(server) => {
                *self.inflight.entry(server).or_insert(0) += gang;
                self.rotation.entry(server).or_default().push_back(job);
                vec![Action::Place { job, server }]
            }
            None => Vec::new(),
        }
    }

    fn plan_round(&mut self, view: &SimView<'_>) -> RoundPlan {
        self.inflight.clear();
        let mut plan = RoundPlan::empty();
        // Retry jobs whose placement failed earlier (e.g. during an outage).
        let pending: Vec<gfair_types::JobId> = view.pending_jobs().map(|j| j.id).collect();
        for job in pending {
            plan.actions.extend(self.on_job_arrival(view, job));
        }
        for server in &view.cluster().servers {
            let resident: BTreeSet<JobId> = view.resident(server.id).collect();
            let rotation = self.rotation.entry(server.id).or_default();
            // Drop departed jobs from the rotation.
            rotation.retain(|j| resident.contains(j));
            if rotation.is_empty() {
                continue;
            }
            // Pack in rotation order, then advance the rotation so the head
            // changes every round (round-robin over jobs).
            let mut free = server.num_gpus;
            let mut selected = Vec::new();
            for &job in rotation.iter() {
                let gang = view.job(job).expect("resident job").gang;
                if gang <= free {
                    selected.push(job);
                    free -= gang;
                    if free == 0 {
                        break;
                    }
                }
            }
            if let Some(head) = rotation.pop_front() {
                rotation.push_back(head);
            }
            for job in selected {
                plan.run_on(server.id, job);
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfair_sim::Simulation;
    use gfair_types::{ClusterSpec, JobSpec, ModelProfile, SimConfig, SimTime, UserId, UserSpec};
    use std::sync::Arc;

    fn model() -> Arc<ModelProfile> {
        Arc::new(ModelProfile::with_default_overheads("m", vec![1.0]))
    }

    fn job(id: u32, user: u32, gang: u32, service: f64) -> JobSpec {
        JobSpec::new(
            gfair_types::JobId::new(id),
            UserId::new(user),
            model(),
            gang,
            service,
            SimTime::ZERO,
        )
    }

    #[test]
    fn keeps_the_cluster_busy() {
        let trace: Vec<JobSpec> = (0..8).map(|i| job(i, 0, 1, 40_000.0)).collect();
        let sim = Simulation::new(
            ClusterSpec::homogeneous(2, 4),
            UserSpec::equal_users(1, 100),
            trace,
            SimConfig::default(),
        )
        .unwrap();
        let report = sim
            .run_until(&mut GandivaLike::new(), SimTime::from_secs(3600))
            .unwrap();
        assert!(report.utilization() > 0.99, "util {}", report.utilization());
    }

    #[test]
    fn job_count_buys_share_no_user_fairness() {
        // User 0 submits 3 jobs, user 1 submits 1: job-level round-robin
        // gives user 0 ~3x the GPU time — exactly the unfairness the paper
        // fixes.
        let mut trace: Vec<JobSpec> = (0..3).map(|i| job(i, 0, 1, 40_000.0)).collect();
        trace.push(job(9, 1, 1, 40_000.0));
        let sim = Simulation::new(
            ClusterSpec::homogeneous(1, 2),
            UserSpec::equal_users(2, 100),
            trace,
            SimConfig::default(),
        )
        .unwrap();
        let report = sim
            .run_until(&mut GandivaLike::new(), SimTime::from_secs(2 * 3600))
            .unwrap();
        let r = report.gpu_secs_of(UserId::new(0)) / report.gpu_secs_of(UserId::new(1));
        assert!(r > 2.0, "expected job-count bias toward user 0, ratio {r}");
    }

    #[test]
    fn rotation_gives_each_job_turns() {
        // Three 1-GPU jobs on a 1-GPU server: every job gets ~1/3.
        let trace: Vec<JobSpec> = (0..3).map(|i| job(i, i, 1, 100_000.0)).collect();
        let sim = Simulation::new(
            ClusterSpec::homogeneous(1, 1),
            UserSpec::equal_users(3, 100),
            trace,
            SimConfig::default(),
        )
        .unwrap();
        let report = sim
            .run_until(&mut GandivaLike::new(), SimTime::from_secs(3600))
            .unwrap();
        for u in 0..3u32 {
            let share = report.gpu_secs_of(UserId::new(u)) / report.gpu_secs_used;
            assert!((share - 1.0 / 3.0).abs() < 0.05, "job {u} share {share}");
        }
    }

    #[test]
    fn simultaneous_arrivals_spread_over_servers() {
        let trace: Vec<JobSpec> = (0..2).map(|i| job(i, 0, 4, 10_000.0)).collect();
        let sim = Simulation::new(
            ClusterSpec::homogeneous(2, 4),
            UserSpec::equal_users(1, 100),
            trace,
            SimConfig::default(),
        )
        .unwrap();
        let report = sim
            .run_until(&mut GandivaLike::new(), SimTime::from_secs(600))
            .unwrap();
        // Both 4-GPU gangs run from the start: full utilization.
        assert!(report.utilization() > 0.99, "util {}", report.utilization());
    }
}
