//! User-fair gang *lottery* scheduling — the randomized alternative.
//!
//! Same placement and user-level ticket currency as Gandiva_fair's local
//! schedulers, but each server holds a per-quantum ticket lottery instead of
//! stride scheduling. Proportional in expectation, but short-window shares
//! fluctuate with O(1/sqrt(n)) noise — the reason the paper builds on
//! stride. Used by ablation A3 to quantify the variance gap.

use crate::util::least_loaded_fitting;
use gfair_sim::{Action, ClusterScheduler, RoundPlan, SimView};
use gfair_stride::LotteryScheduler;
use gfair_types::{JobId, ServerId, UserId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, BTreeSet};

/// Gang lottery with user-level tickets, per server.
#[derive(Debug)]
pub struct LotteryGang {
    rng: ChaCha8Rng,
    locals: BTreeMap<ServerId, LotteryScheduler<JobId>>,
    inflight: BTreeMap<ServerId, u32>,
}

impl LotteryGang {
    /// Creates the scheduler; `seed` drives all lottery draws.
    pub fn new(seed: u64) -> Self {
        LotteryGang {
            rng: ChaCha8Rng::seed_from_u64(seed),
            locals: BTreeMap::new(),
            inflight: BTreeMap::new(),
        }
    }

    /// Rebuilds one server's lottery entrants from the residency view with
    /// user-level ticket exchange (user tickets split over the user's jobs
    /// on this server).
    fn sync_server(&mut self, view: &SimView<'_>, server: ServerId) {
        let tickets: BTreeMap<UserId, u64> =
            view.users().iter().map(|u| (u.id, u.tickets)).collect();
        let resident: BTreeSet<JobId> = view.resident(server).collect();
        let mut per_user_count: BTreeMap<UserId, usize> = BTreeMap::new();
        for &j in &resident {
            let user = view.job(j).expect("resident job").user;
            *per_user_count.entry(user).or_insert(0) += 1;
        }
        let capacity = view.cluster().server(server).num_gpus;
        let local = self
            .locals
            .entry(server)
            .or_insert_with(|| LotteryScheduler::new(capacity));
        // Rebuild from scratch: lottery is memoryless, so this is cheap and
        // exact.
        let mut fresh = LotteryScheduler::new(capacity);
        for &j in &resident {
            let info = view.job(j).expect("resident job");
            let user_tickets = tickets.get(&info.user).copied().unwrap_or(1) as f64;
            let share = user_tickets / per_user_count[&info.user] as f64;
            fresh.join(j, share, info.gang);
        }
        *local = fresh;
    }
}

impl ClusterScheduler for LotteryGang {
    fn name(&self) -> &'static str {
        "lottery-gang"
    }

    fn on_job_arrival(&mut self, view: &SimView<'_>, job: JobId) -> Vec<Action> {
        let gang = view.job(job).expect("known job").gang;
        match least_loaded_fitting(view, &self.inflight, gang) {
            Some(server) => {
                *self.inflight.entry(server).or_insert(0) += gang;
                vec![Action::Place { job, server }]
            }
            None => Vec::new(),
        }
    }

    fn plan_round(&mut self, view: &SimView<'_>) -> RoundPlan {
        self.inflight.clear();
        let mut plan = RoundPlan::empty();
        // Retry jobs whose placement failed earlier (e.g. during an outage).
        let pending: Vec<JobId> = view.pending_jobs().map(|j| j.id).collect();
        for job in pending {
            plan.actions.extend(self.on_job_arrival(view, job));
        }
        let servers: Vec<ServerId> = view.cluster().servers.iter().map(|s| s.id).collect();
        for server in servers {
            self.sync_server(view, server);
            let local = self.locals.get_mut(&server).expect("synced");
            for job in local.draw_round(&mut self.rng) {
                plan.run_on(server, job);
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfair_sim::Simulation;
    use gfair_types::{ClusterSpec, JobSpec, ModelProfile, SimConfig, SimTime, UserSpec};
    use std::sync::Arc;

    fn model() -> Arc<ModelProfile> {
        Arc::new(ModelProfile::with_default_overheads("m", vec![1.0]))
    }

    fn job(id: u32, user: u32, service: f64) -> JobSpec {
        JobSpec::new(
            gfair_types::JobId::new(id),
            UserId::new(user),
            model(),
            1,
            service,
            SimTime::ZERO,
        )
    }

    #[test]
    fn long_run_shares_are_ticket_proportional() {
        let users = vec![
            UserSpec::new(UserId::new(0), "big", 300),
            UserSpec::new(UserId::new(1), "small", 100),
        ];
        // Services far beyond the horizon so nobody finishes and the ratio
        // reflects steady-state contention only.
        let trace = vec![job(0, 0, 1_000_000.0), job(1, 1, 1_000_000.0)];
        let sim = Simulation::new(
            ClusterSpec::homogeneous(1, 1),
            users,
            trace,
            SimConfig::default(),
        )
        .unwrap();
        let report = sim
            .run_until(&mut LotteryGang::new(1), SimTime::from_secs(40 * 3600))
            .unwrap();
        let ratio = report.gpu_secs_of(UserId::new(0)) / report.gpu_secs_of(UserId::new(1));
        assert!(
            (ratio - 3.0).abs() < 0.4,
            "expected ~3x in expectation, got {ratio}"
        );
    }

    #[test]
    fn job_flooding_does_not_buy_share_in_expectation() {
        // One GPU, so every round is a single user-proportional draw: the
        // flooder's six jobs share the user's 100 tickets and win exactly
        // half the rounds in expectation.
        let users = UserSpec::equal_users(2, 100);
        let mut trace: Vec<JobSpec> = (0..6).map(|i| job(i, 0, 1_000_000.0)).collect();
        trace.push(job(10, 1, 1_000_000.0));
        let sim = Simulation::new(
            ClusterSpec::homogeneous(1, 1),
            users,
            trace,
            SimConfig::default(),
        )
        .unwrap();
        let report = sim
            .run_until(&mut LotteryGang::new(2), SimTime::from_secs(40 * 3600))
            .unwrap();
        let a = report.gpu_secs_of(UserId::new(0));
        let b = report.gpu_secs_of(UserId::new(1));
        assert!(
            (a - b).abs() / a.max(b) < 0.1,
            "user-level lottery shares diverged: {a} vs {b}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let users = UserSpec::equal_users(2, 100);
        let mk = || {
            let trace = vec![job(0, 0, 5_000.0), job(1, 1, 5_000.0)];
            Simulation::new(
                ClusterSpec::homogeneous(1, 1),
                users.clone(),
                trace,
                SimConfig::default(),
            )
            .unwrap()
            .run(&mut LotteryGang::new(9))
            .unwrap()
        };
        assert_eq!(mk(), mk());
    }
}
