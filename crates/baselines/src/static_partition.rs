//! Static partitioning: fairness by hard quota.
//!
//! Each user receives a fixed, ticket-proportional set of whole servers at
//! construction time (per generation, so every user gets a slice of each
//! hardware class). A user's jobs run only inside their own partition, FIFO
//! and run-to-completion. This is how many production clusters implement
//! "fairness" — and the paper's argument against it: when a user is idle
//! their GPUs sit unused, and a user's burst cannot borrow idle capacity, so
//! job completion times are far worse than under Gandiva_fair at the same
//! fairness level.

use gfair_sim::{Action, ClusterScheduler, RoundPlan, SimView};
use gfair_types::{JobId, ServerId, UserId, UserSpec};
use std::collections::{BTreeMap, VecDeque};

/// Hard ticket-proportional partitioning with per-user FIFO queues.
#[derive(Debug)]
pub struct StaticPartition {
    /// Server ownership, fixed at construction.
    owner: BTreeMap<ServerId, UserId>,
    /// Per-user FIFO of jobs waiting for space in their partition.
    queues: BTreeMap<UserId, VecDeque<JobId>>,
    /// In-flight placements per server (GPUs).
    inflight: BTreeMap<ServerId, u32>,
}

impl StaticPartition {
    /// Partitions the servers of each generation among `users` in
    /// round-robin proportion to tickets (largest-remainder assignment over
    /// server counts).
    ///
    /// # Panics
    ///
    /// Panics if `users` is empty.
    pub fn new(cluster: &gfair_types::ClusterSpec, users: &[UserSpec]) -> Self {
        assert!(!users.is_empty(), "partitioning needs at least one user");
        let total_tickets: u64 = users.iter().map(|u| u.tickets).sum();
        let mut owner = BTreeMap::new();
        for gen in cluster.catalog.ids() {
            let servers: Vec<ServerId> = cluster.servers_of_gen(gen).map(|s| s.id).collect();
            let n = servers.len();
            // Largest-remainder apportionment of this generation's servers.
            let mut shares: Vec<(usize, f64)> = users
                .iter()
                .enumerate()
                .map(|(i, u)| (i, n as f64 * u.tickets as f64 / total_tickets as f64))
                .collect();
            let mut counts: Vec<usize> = shares.iter().map(|&(_, s)| s.floor() as usize).collect();
            let assigned: usize = counts.iter().sum();
            shares.sort_by(|a, b| {
                let fa = a.1 - a.1.floor();
                let fb = b.1 - b.1.floor();
                fb.total_cmp(&fa).then(a.0.cmp(&b.0))
            });
            for k in 0..n.saturating_sub(assigned) {
                counts[shares[k % shares.len()].0] += 1;
            }
            let mut it = servers.into_iter();
            for (i, user) in users.iter().enumerate() {
                for _ in 0..counts[i] {
                    if let Some(s) = it.next() {
                        owner.insert(s, user.id);
                    }
                }
            }
            // Any leftovers (rounding) go to the first user.
            for s in it {
                owner.insert(s, users[0].id);
            }
        }
        StaticPartition {
            owner,
            queues: BTreeMap::new(),
            inflight: BTreeMap::new(),
        }
    }

    /// The user owning `server`.
    pub fn owner_of(&self, server: ServerId) -> Option<UserId> {
        self.owner.get(&server).copied()
    }

    /// Servers owned by `user`, in id order.
    pub fn partition_of(&self, user: UserId) -> Vec<ServerId> {
        self.owner
            .iter()
            .filter(|(_, &u)| u == user)
            .map(|(&s, _)| s)
            .collect()
    }

    /// Tries to place the head of `user`'s queue into their partition.
    fn try_place(&mut self, view: &SimView<'_>, user: UserId) -> Vec<Action> {
        let mut actions = Vec::new();
        while let Some(&job) = self.queues.get(&user).and_then(|q| q.front()) {
            let gang = view.job(job).expect("queued job is known").gang;
            let target = self
                .partition_of(user)
                .into_iter()
                .find(|&s| crate::util::free_gpus(view, &self.inflight, s) >= gang);
            match target {
                Some(server) => {
                    *self.inflight.entry(server).or_insert(0) += gang;
                    self.queues
                        .get_mut(&user)
                        .expect("queue exists")
                        .pop_front();
                    actions.push(Action::Place { job, server });
                }
                None => break,
            }
        }
        actions
    }
}

impl ClusterScheduler for StaticPartition {
    fn name(&self) -> &'static str {
        "static-partition"
    }

    fn on_job_arrival(&mut self, view: &SimView<'_>, job: JobId) -> Vec<Action> {
        let user = view.job(job).expect("known job").user;
        self.queues.entry(user).or_default().push_back(job);
        self.try_place(view, user)
    }

    fn on_job_finish(&mut self, view: &SimView<'_>, job: JobId) -> Vec<Action> {
        let user = view.job(job).expect("known job").user;
        self.try_place(view, user)
    }

    fn plan_round(&mut self, view: &SimView<'_>) -> RoundPlan {
        self.inflight.clear();
        let mut plan = RoundPlan::empty();
        // Retry queued placements each round (frees may have raced).
        let users: Vec<UserId> = self.queues.keys().copied().collect();
        for user in users {
            plan.actions.extend(self.try_place(view, user));
        }
        // Run-to-completion: every resident job runs every round.
        for server in &view.cluster().servers {
            for job in view.resident(server.id) {
                plan.run_on(server.id, job);
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfair_sim::Simulation;
    use gfair_types::{ClusterSpec, JobSpec, ModelProfile, SimConfig, SimTime};
    use std::sync::Arc;

    fn model() -> Arc<ModelProfile> {
        Arc::new(ModelProfile::with_default_overheads("m", vec![1.0]))
    }

    fn job(id: u32, user: u32, gang: u32, service: f64, at: u64) -> JobSpec {
        JobSpec::new(
            gfair_types::JobId::new(id),
            UserId::new(user),
            model(),
            gang,
            service,
            SimTime::from_secs(at),
        )
    }

    #[test]
    fn servers_are_split_by_tickets() {
        let cluster = ClusterSpec::homogeneous(4, 4);
        let users = vec![
            UserSpec::new(UserId::new(0), "big", 300),
            UserSpec::new(UserId::new(1), "small", 100),
        ];
        let sp = StaticPartition::new(&cluster, &users);
        assert_eq!(sp.partition_of(UserId::new(0)).len(), 3);
        assert_eq!(sp.partition_of(UserId::new(1)).len(), 1);
    }

    #[test]
    fn every_server_has_an_owner() {
        let cluster = ClusterSpec::paper_testbed();
        let users = UserSpec::equal_users(5, 100);
        let sp = StaticPartition::new(&cluster, &users);
        for s in &cluster.servers {
            assert!(sp.owner_of(s.id).is_some(), "server {} unowned", s.id);
        }
    }

    #[test]
    fn jobs_stay_inside_their_partition() {
        let cluster = ClusterSpec::homogeneous(2, 4);
        let users = UserSpec::equal_users(2, 100);
        let mut sp = StaticPartition::new(&cluster, &users);
        let own0 = sp.partition_of(UserId::new(0));
        let trace = vec![job(0, 0, 2, 600.0, 0), job(1, 1, 2, 600.0, 0)];
        let sim = Simulation::new(cluster, users, trace, SimConfig::default()).unwrap();
        let report = sim.run(&mut sp).unwrap();
        assert_eq!(report.finished_jobs(), 2);
        // Check via per-user accounting: both got exactly their work done.
        assert!((report.gpu_secs_of(UserId::new(0)) - 1200.0).abs() < 1e-6);
        assert!(!own0.is_empty());
    }

    #[test]
    fn idle_partition_capacity_is_wasted() {
        // User 1 never submits; user 0 floods. Under static partitioning
        // user 0 is stuck with half the cluster: utilization caps at 50%.
        let cluster = ClusterSpec::homogeneous(2, 4);
        let users = UserSpec::equal_users(2, 100);
        let mut sp = StaticPartition::new(&cluster, &users);
        let trace: Vec<JobSpec> = (0..8).map(|i| job(i, 0, 4, 100_000.0, 0)).collect();
        let sim = Simulation::new(cluster, users, trace, SimConfig::default()).unwrap();
        let report = sim.run_until(&mut sp, SimTime::from_secs(3600)).unwrap();
        assert!(
            report.utilization() < 0.55,
            "partitioning should waste the idle half, util {}",
            report.utilization()
        );
        assert_eq!(report.gpu_secs_of(UserId::new(1)), 0.0);
    }

    #[test]
    fn queued_jobs_start_when_partition_frees() {
        let cluster = ClusterSpec::homogeneous(1, 4);
        let users = UserSpec::equal_users(1, 100);
        let mut sp = StaticPartition::new(&cluster, &users);
        // Two 4-GPU jobs: strictly sequential in a 4-GPU partition.
        let trace = vec![job(0, 0, 4, 300.0, 0), job(1, 0, 4, 300.0, 0)];
        let sim = Simulation::new(cluster, users, trace, SimConfig::default()).unwrap();
        let report = sim.run(&mut sp).unwrap();
        assert_eq!(
            report.jobs[&gfair_types::JobId::new(0)].finish,
            Some(SimTime::from_secs(300))
        );
        assert_eq!(
            report.jobs[&gfair_types::JobId::new(1)].finish,
            Some(SimTime::from_secs(600))
        );
    }
}
