//! Baseline schedulers for the comparison experiments.
//!
//! The paper positions Gandiva_fair between two poles:
//!
//! * schedulers that chase **efficiency without fairness** — represented by
//!   [`GandivaLike`], which time-slices and packs for utilization but gives
//!   users whatever their job count happens to claim;
//! * schedulers that enforce **fairness without efficiency** — represented
//!   by [`StaticPartition`], which hard-splits the cluster by tickets and
//!   lets a user's idle partition go to waste.
//!
//! [`Drf`] adapts Dominant Resource Fairness to time-sliced gangs over
//! heterogeneous GPU generations (fair per round, but heterogeneity-blind
//! and migration-free), [`Fifo`] is the classic run-to-completion queue that
//! HPC clusters default to, and [`LotteryGang`] is the randomized
//! proportional-share alternative used to show why the paper chose
//! deterministic stride (ablation A3).

pub mod drf;
pub mod fifo;
pub mod gandiva_like;
pub mod lottery_gang;
pub mod static_partition;
mod util;

pub use drf::Drf;
pub use fifo::Fifo;
pub use gandiva_like::GandivaLike;
pub use lottery_gang::LotteryGang;
pub use static_partition::StaticPartition;
