//! Global FIFO with run-to-completion.
//!
//! The classic HPC default: jobs start in arrival order as soon as any
//! server has enough free GPUs, hold those GPUs until they finish, and are
//! never time-sliced or migrated. Head-of-line blocking by large gangs and
//! total indifference to users make it the natural "neither fair nor
//! efficient" anchor for the comparison experiments.

use crate::util::free_gpus;
use gfair_sim::{Action, ClusterScheduler, RoundPlan, SimView};
use gfair_types::JobId;
use gfair_types::ServerId;
use std::collections::{BTreeMap, VecDeque};

/// Global FIFO queue, run-to-completion, no time slicing.
#[derive(Debug, Default)]
pub struct Fifo {
    queue: VecDeque<JobId>,
    inflight: BTreeMap<ServerId, u32>,
}

impl Fifo {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Jobs currently waiting for GPUs.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Starts queued jobs in strict FIFO order while the head fits.
    fn drain(&mut self, view: &SimView<'_>) -> Vec<Action> {
        let mut actions = Vec::new();
        while let Some(&job) = self.queue.front() {
            let gang = view.job(job).expect("queued job is known").gang;
            let target = view
                .cluster()
                .servers
                .iter()
                .find(|s| free_gpus(view, &self.inflight, s.id) >= gang)
                .map(|s| s.id);
            match target {
                Some(server) => {
                    *self.inflight.entry(server).or_insert(0) += gang;
                    self.queue.pop_front();
                    actions.push(Action::Place { job, server });
                }
                // Strict FIFO: the head blocks everything behind it.
                None => break,
            }
        }
        actions
    }
}

impl ClusterScheduler for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn on_job_arrival(&mut self, view: &SimView<'_>, job: JobId) -> Vec<Action> {
        self.queue.push_back(job);
        self.drain(view)
    }

    fn on_job_finish(&mut self, view: &SimView<'_>, _job: JobId) -> Vec<Action> {
        self.drain(view)
    }

    fn plan_round(&mut self, view: &SimView<'_>) -> RoundPlan {
        self.inflight.clear();
        let mut plan = RoundPlan::empty();
        plan.actions = self.drain(view);
        for server in &view.cluster().servers {
            for job in view.resident(server.id) {
                plan.run_on(server.id, job);
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfair_sim::Simulation;
    use gfair_types::{ClusterSpec, JobSpec, ModelProfile, SimConfig, SimTime, UserId, UserSpec};
    use std::sync::Arc;

    fn model() -> Arc<ModelProfile> {
        Arc::new(ModelProfile::with_default_overheads("m", vec![1.0]))
    }

    fn job(id: u32, gang: u32, service: f64, at: u64) -> JobSpec {
        JobSpec::new(
            gfair_types::JobId::new(id),
            UserId::new(0),
            model(),
            gang,
            service,
            SimTime::from_secs(at),
        )
    }

    #[test]
    fn jobs_run_in_arrival_order() {
        let trace = vec![
            job(0, 4, 300.0, 0),
            job(1, 4, 300.0, 0),
            job(2, 4, 300.0, 0),
        ];
        let sim = Simulation::new(
            ClusterSpec::homogeneous(1, 4),
            UserSpec::equal_users(1, 100),
            trace,
            SimConfig::default(),
        )
        .unwrap();
        let report = sim.run(&mut Fifo::new()).unwrap();
        let f: Vec<u64> = (0..3)
            .map(|i| {
                report.jobs[&gfair_types::JobId::new(i)]
                    .finish
                    .unwrap()
                    .as_secs()
            })
            .collect();
        assert_eq!(f, vec![300, 600, 900]);
    }

    #[test]
    fn head_of_line_blocking_by_wide_gang() {
        // A gang of 4 at the head blocks two 1-GPU jobs even though 3 GPUs
        // are free.
        let trace = vec![
            job(0, 1, 10_000.0, 0),
            job(1, 4, 300.0, 10),
            job(2, 1, 300.0, 20),
        ];
        let sim = Simulation::new(
            ClusterSpec::homogeneous(1, 4),
            UserSpec::equal_users(1, 100),
            trace,
            SimConfig::default(),
        )
        .unwrap();
        let report = sim
            .run_until(&mut Fifo::new(), SimTime::from_secs(3600))
            .unwrap();
        // Job 2 cannot start while job 1 waits for job 0's GPU.
        assert_eq!(report.jobs[&gfair_types::JobId::new(1)].first_run, None);
        assert_eq!(report.jobs[&gfair_types::JobId::new(2)].first_run, None);
        // Utilization collapses to 1/4.
        assert!(report.utilization() < 0.3);
    }

    #[test]
    fn parallel_start_when_capacity_allows() {
        let trace = vec![job(0, 2, 300.0, 0), job(1, 2, 300.0, 0)];
        let sim = Simulation::new(
            ClusterSpec::homogeneous(1, 4),
            UserSpec::equal_users(1, 100),
            trace,
            SimConfig::default(),
        )
        .unwrap();
        let report = sim.run(&mut Fifo::new()).unwrap();
        assert_eq!(
            report.jobs[&gfair_types::JobId::new(1)].finish,
            Some(SimTime::from_secs(300))
        );
    }
}
