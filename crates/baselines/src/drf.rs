//! Dominant Resource Fairness over time-sliced gangs.
//!
//! DRF (Ghodsi et al., NSDI'11) picks, at each allocation opportunity, the
//! user with the smallest *dominant share* — their largest per-resource
//! share. We treat each GPU generation as a resource and rebuild the
//! allocation every quantum: repeatedly select the lowest-dominant-share
//! user that still has a resident, unscheduled job that fits its server's
//! remaining GPUs.
//!
//! DRF is user-fair per round but heterogeneity-blind (a V100 counts the
//! same for a VAE as for a ResNeXt) and does not migrate, so its efficiency
//! trails Gandiva_fair on heterogeneous clusters — which is exactly the
//! comparison the paper draws against quota-style fair schedulers.

use crate::util::least_loaded_fitting;
use gfair_sim::{Action, ClusterScheduler, RoundPlan, SimView};
use gfair_types::{GenId, JobId, ServerId, UserId};
use std::collections::BTreeMap;

/// Per-round DRF allocation over resident gangs.
#[derive(Debug, Default)]
pub struct Drf {
    inflight: BTreeMap<ServerId, u32>,
}

impl Drf {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ClusterScheduler for Drf {
    fn name(&self) -> &'static str {
        "drf"
    }

    fn on_job_arrival(&mut self, view: &SimView<'_>, job: JobId) -> Vec<Action> {
        let gang = view.job(job).expect("known job").gang;
        match least_loaded_fitting(view, &self.inflight, gang) {
            Some(server) => {
                *self.inflight.entry(server).or_insert(0) += gang;
                vec![Action::Place { job, server }]
            }
            None => Vec::new(),
        }
    }

    fn plan_round(&mut self, view: &SimView<'_>) -> RoundPlan {
        self.inflight.clear();
        // Retry jobs whose placement failed earlier (e.g. during an outage).
        let mut retry_actions = Vec::new();
        let pending: Vec<JobId> = view.pending_jobs().map(|j| j.id).collect();
        for job in pending {
            retry_actions.extend(self.on_job_arrival(view, job));
        }
        let cluster = view.cluster();
        let gen_totals: BTreeMap<GenId, u32> = cluster.gpus_per_gen();
        // Remaining free GPUs per server for this round's allocation.
        let mut free: BTreeMap<ServerId, u32> =
            cluster.servers.iter().map(|s| (s.id, s.num_gpus)).collect();
        // Per-user allocation this round, per generation.
        let mut alloc: BTreeMap<UserId, BTreeMap<GenId, f64>> = BTreeMap::new();
        // Candidate jobs per user, in id order (stable priority).
        let mut candidates: BTreeMap<UserId, Vec<JobId>> = BTreeMap::new();
        for server in &cluster.servers {
            for job in view.resident(server.id) {
                let user = view.job(job).expect("resident job").user;
                candidates.entry(user).or_default().push(job);
            }
        }
        let dominant = |alloc: &BTreeMap<GenId, f64>| -> f64 {
            alloc
                .iter()
                .map(|(g, a)| a / gen_totals[g] as f64)
                .fold(0.0, f64::max)
        };
        let mut plan = RoundPlan::empty();
        plan.actions = retry_actions;
        loop {
            // Lowest dominant share first (ties: smaller user id).
            let mut order: Vec<UserId> = candidates
                .iter()
                .filter(|(_, jobs)| !jobs.is_empty())
                .map(|(&u, _)| u)
                .collect();
            if order.is_empty() {
                break;
            }
            order.sort_by(|a, b| {
                let da = alloc.get(a).map(&dominant).unwrap_or(0.0);
                let db = alloc.get(b).map(&dominant).unwrap_or(0.0);
                da.total_cmp(&db).then(a.cmp(b))
            });
            let mut scheduled_any = false;
            'users: for user in order {
                let jobs = candidates.get_mut(&user).expect("listed user");
                for idx in 0..jobs.len() {
                    let job = jobs[idx];
                    let info = view.job(job).expect("resident job");
                    let server = info.server.expect("resident job has a server");
                    let f = free.get_mut(&server).expect("known server");
                    if info.gang <= *f {
                        *f -= info.gang;
                        jobs.remove(idx);
                        plan.run_on(server, job);
                        let gen = cluster.server(server).gen;
                        *alloc.entry(user).or_default().entry(gen).or_insert(0.0) +=
                            info.gang as f64;
                        scheduled_any = true;
                        // Re-rank after every grant, as DRF prescribes.
                        break 'users;
                    }
                }
                // No job of this user fits; remove them from contention so
                // lower-priority users can backfill.
                jobs.clear();
            }
            if !scheduled_any {
                break;
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfair_sim::Simulation;
    use gfair_types::{ClusterSpec, JobSpec, ModelProfile, SimConfig, SimTime, UserSpec};
    use std::sync::Arc;

    fn model() -> Arc<ModelProfile> {
        Arc::new(ModelProfile::with_default_overheads("m", vec![1.0]))
    }

    fn job(id: u32, user: u32, gang: u32, service: f64) -> JobSpec {
        JobSpec::new(
            gfair_types::JobId::new(id),
            UserId::new(user),
            model(),
            gang,
            service,
            SimTime::ZERO,
        )
    }

    #[test]
    fn equal_users_get_equal_rounds() {
        // 2 users x 4 single-GPU jobs on 4 GPUs: DRF alternates grants,
        // giving each user ~2 GPUs per round.
        let mut trace = Vec::new();
        for u in 0..2u32 {
            for k in 0..4u32 {
                trace.push(job(u * 4 + k, u, 1, 50_000.0));
            }
        }
        let sim = Simulation::new(
            ClusterSpec::homogeneous(1, 4),
            UserSpec::equal_users(2, 100),
            trace,
            SimConfig::default(),
        )
        .unwrap();
        let report = sim
            .run_until(&mut Drf::new(), SimTime::from_secs(3600))
            .unwrap();
        let a = report.gpu_secs_of(UserId::new(0));
        let b = report.gpu_secs_of(UserId::new(1));
        assert!((a - b).abs() / a.max(b) < 0.05, "unequal: {a} vs {b}");
        assert!(report.utilization() > 0.99);
    }

    #[test]
    fn user_with_fewer_jobs_still_gets_share() {
        // User 0 floods with 6 jobs; user 1 has 2. DRF equalizes dominant
        // shares, so user 1 still gets ~2 GPUs per round (their cap).
        let mut trace: Vec<JobSpec> = (0..6).map(|i| job(i, 0, 1, 50_000.0)).collect();
        trace.push(job(10, 1, 1, 50_000.0));
        trace.push(job(11, 1, 1, 50_000.0));
        let sim = Simulation::new(
            ClusterSpec::homogeneous(1, 4),
            UserSpec::equal_users(2, 100),
            trace,
            SimConfig::default(),
        )
        .unwrap();
        let report = sim
            .run_until(&mut Drf::new(), SimTime::from_secs(3600))
            .unwrap();
        let a = report.gpu_secs_of(UserId::new(0));
        let b = report.gpu_secs_of(UserId::new(1));
        assert!(
            (a - b).abs() / a.max(b) < 0.1,
            "DRF should equalize despite job counts: {a} vs {b}"
        );
    }

    #[test]
    fn backfills_when_fair_pick_does_not_fit() {
        // User 0's only job is a gang of 3 resident on a server with 4 free;
        // user 1 has singles. Everything should pack: no idle GPUs.
        let trace = vec![
            job(0, 0, 3, 50_000.0),
            job(1, 1, 1, 50_000.0),
            job(2, 1, 1, 50_000.0),
        ];
        let sim = Simulation::new(
            ClusterSpec::homogeneous(1, 4),
            UserSpec::equal_users(2, 100),
            trace,
            SimConfig::default(),
        )
        .unwrap();
        let report = sim
            .run_until(&mut Drf::new(), SimTime::from_secs(1800))
            .unwrap();
        assert!(report.utilization() > 0.99, "util {}", report.utilization());
    }
}
