//! Shared placement helpers for the baseline schedulers.

use gfair_sim::SimView;
use gfair_types::ServerId;
use std::collections::BTreeMap;

/// Least-loaded server that can host a gang of `gang` GPUs, accounting for
/// placements issued this round but not yet applied (`inflight`).
pub(crate) fn least_loaded_fitting(
    view: &SimView<'_>,
    inflight: &BTreeMap<ServerId, u32>,
    gang: u32,
) -> Option<ServerId> {
    view.up_servers()
        .filter(|s| s.num_gpus >= gang)
        .min_by(|a, b| {
            let la = projected_load(view, inflight, a.id);
            let lb = projected_load(view, inflight, b.id);
            la.total_cmp(&lb).then(a.id.cmp(&b.id))
        })
        .map(|s| s.id)
}

/// Server load including in-flight placements.
pub(crate) fn projected_load(
    view: &SimView<'_>,
    inflight: &BTreeMap<ServerId, u32>,
    server: ServerId,
) -> f64 {
    let gpus = view.cluster().server(server).num_gpus;
    let pending = inflight.get(&server).copied().unwrap_or(0);
    (view.resident_demand(server) + pending) as f64 / gpus as f64
}

/// Free GPUs on a server under run-to-completion semantics (capacity minus
/// resident demand minus in-flight placements), clamped at zero.
pub(crate) fn free_gpus(
    view: &SimView<'_>,
    inflight: &BTreeMap<ServerId, u32>,
    server: ServerId,
) -> u32 {
    if !view.is_up(server) {
        return 0;
    }
    let gpus = view.cluster().server(server).num_gpus;
    let used = view.resident_demand(server) + inflight.get(&server).copied().unwrap_or(0);
    gpus.saturating_sub(used)
}
