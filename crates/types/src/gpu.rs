//! GPU generations and the generation catalog.
//!
//! Data centers accumulate a mix of GPU generations because new hardware is
//! released faster than old hardware is retired. Gandiva_fair's evaluation
//! cluster mixed NVIDIA K80, P100 and V100 GPUs; the *relative* speed of a
//! generation depends strongly on the model being trained (the paper's
//! "variable marginal utility"), so a generation itself only carries a
//! *nominal* speed class — per-model speedups live in
//! [`crate::model::ModelProfile`].

use crate::ids::GenId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A GPU generation (hardware class) present in the cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuGeneration {
    /// Identifier; also the index of this generation in the [`GenCatalog`].
    pub id: GenId,
    /// Human-readable name, e.g. `"K80"`.
    pub name: String,
    /// Nominal relative compute speed, with the slowest generation at 1.0.
    ///
    /// This is only a *class* ranking used to order generations from slow to
    /// fast; actual per-model speedups are profiled per job.
    pub nominal_speed: f64,
    /// Device memory in GiB (affects which models fit; informational here).
    pub memory_gib: f64,
    /// Release year, used only for documentation/reporting.
    pub release_year: u16,
}

impl fmt::Display for GpuGeneration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// The ordered set of GPU generations known to a simulation.
///
/// Generations are stored slowest-first; `GenId(i)` indexes the `i`-th entry.
/// The slowest generation (`GenId(0)`) is the *base currency* for
/// heterogeneity-aware accounting and trading: all normalized GPU-time is
/// expressed in "slowest-generation GPU seconds".
///
/// # Examples
///
/// ```
/// use gfair_types::gpu::GenCatalog;
///
/// let cat = GenCatalog::k80_p100_v100();
/// assert_eq!(cat.len(), 3);
/// assert_eq!(cat.slowest().name, "K80");
/// assert_eq!(cat.fastest().name, "V100");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenCatalog {
    gens: Vec<GpuGeneration>,
}

impl GenCatalog {
    /// Builds a catalog from `(name, nominal_speed, memory_gib, year)` rows.
    ///
    /// Rows are sorted by nominal speed (slowest first) and assigned ids in
    /// that order.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty, if any nominal speed is not strictly
    /// positive and finite, or if two generations share a name.
    pub fn from_rows(rows: Vec<(&str, f64, f64, u16)>) -> Self {
        assert!(
            !rows.is_empty(),
            "catalog must have at least one generation"
        );
        let mut rows = rows;
        rows.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("speeds must be comparable"));
        let mut gens = Vec::with_capacity(rows.len());
        for (i, (name, speed, mem, year)) in rows.into_iter().enumerate() {
            assert!(
                speed.is_finite() && speed > 0.0,
                "nominal speed must be positive and finite, got {speed} for {name}"
            );
            assert!(
                gens.iter().all(|g: &GpuGeneration| g.name != name),
                "duplicate generation name {name}"
            );
            gens.push(GpuGeneration {
                id: GenId::new(i as u32),
                name: name.to_string(),
                nominal_speed: speed,
                memory_gib: mem,
                release_year: year,
            });
        }
        GenCatalog { gens }
    }

    /// The three-generation catalog used throughout the paper's evaluation:
    /// K80 (base), P100 and V100.
    ///
    /// Nominal speeds are class rankings only (per-model speedups vary from
    /// ~1.2x to ~5x; see [`crate::model::ModelProfile`]).
    pub fn k80_p100_v100() -> Self {
        Self::from_rows(vec![
            ("K80", 1.0, 24.0, 2014),
            ("P100", 2.0, 16.0, 2016),
            ("V100", 3.5, 32.0, 2017),
        ])
    }

    /// A single-generation catalog for homogeneous-cluster experiments.
    pub fn homogeneous(name: &str) -> Self {
        Self::from_rows(vec![(name, 1.0, 16.0, 2016)])
    }

    /// Number of generations.
    pub fn len(&self) -> usize {
        self.gens.len()
    }

    /// Returns true if the catalog holds exactly one generation.
    pub fn is_homogeneous(&self) -> bool {
        self.gens.len() == 1
    }

    /// Returns false; a catalog is never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Looks up a generation by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range for this catalog.
    pub fn get(&self, id: GenId) -> &GpuGeneration {
        &self.gens[id.index()]
    }

    /// Looks up a generation by name.
    pub fn by_name(&self, name: &str) -> Option<&GpuGeneration> {
        self.gens.iter().find(|g| g.name == name)
    }

    /// The slowest generation — the base currency for normalized accounting.
    pub fn slowest(&self) -> &GpuGeneration {
        &self.gens[0]
    }

    /// The fastest generation.
    pub fn fastest(&self) -> &GpuGeneration {
        self.gens.last().expect("catalog is never empty")
    }

    /// Iterates over generations slowest-first.
    pub fn iter(&self) -> impl Iterator<Item = &GpuGeneration> {
        self.gens.iter()
    }

    /// Iterates over generation ids slowest-first.
    pub fn ids(&self) -> impl Iterator<Item = GenId> + '_ {
        self.gens.iter().map(|g| g.id)
    }

    /// Iterates over the ids of all generations faster than the slowest.
    ///
    /// These are the generations offered on the "fast" side of trades.
    pub fn fast_ids(&self) -> impl Iterator<Item = GenId> + '_ {
        self.gens.iter().skip(1).map(|g| g.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_catalog_is_slowest_first() {
        let cat = GenCatalog::k80_p100_v100();
        let names: Vec<_> = cat.iter().map(|g| g.name.as_str()).collect();
        assert_eq!(names, vec!["K80", "P100", "V100"]);
        assert_eq!(cat.get(GenId::new(0)).name, "K80");
        assert_eq!(cat.get(GenId::new(2)).name, "V100");
    }

    #[test]
    fn rows_are_sorted_by_speed() {
        let cat = GenCatalog::from_rows(vec![
            ("fast", 4.0, 32.0, 2020),
            ("slow", 1.0, 12.0, 2014),
            ("mid", 2.0, 16.0, 2016),
        ]);
        assert_eq!(cat.slowest().name, "slow");
        assert_eq!(cat.fastest().name, "fast");
        assert_eq!(cat.get(GenId::new(1)).name, "mid");
    }

    #[test]
    fn by_name_lookup() {
        let cat = GenCatalog::k80_p100_v100();
        assert_eq!(cat.by_name("P100").unwrap().id, GenId::new(1));
        assert!(cat.by_name("A100").is_none());
    }

    #[test]
    fn fast_ids_excludes_base_generation() {
        let cat = GenCatalog::k80_p100_v100();
        let fast: Vec<_> = cat.fast_ids().collect();
        assert_eq!(fast, vec![GenId::new(1), GenId::new(2)]);
    }

    #[test]
    fn homogeneous_catalog() {
        let cat = GenCatalog::homogeneous("P100");
        assert!(cat.is_homogeneous());
        assert_eq!(cat.slowest().name, "P100");
        assert_eq!(cat.fastest().name, "P100");
        assert_eq!(cat.fast_ids().count(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one generation")]
    fn empty_catalog_panics() {
        let _ = GenCatalog::from_rows(vec![]);
    }

    #[test]
    #[should_panic(expected = "duplicate generation name")]
    fn duplicate_name_panics() {
        let _ = GenCatalog::from_rows(vec![("K80", 1.0, 24.0, 2014), ("K80", 2.0, 24.0, 2015)]);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn non_positive_speed_panics() {
        let _ = GenCatalog::from_rows(vec![("bad", 0.0, 24.0, 2014)]);
    }

    #[test]
    fn display_uses_name() {
        let cat = GenCatalog::k80_p100_v100();
        assert_eq!(cat.fastest().to_string(), "V100");
    }
}
