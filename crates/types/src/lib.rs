//! Shared vocabulary types for the `gfair` workspace.
//!
//! This crate defines the domain model used by every other crate in the
//! reproduction of *Gandiva_fair* (EuroSys 2020): strongly-typed identifiers,
//! deterministic simulated time, GPU generations, deep-learning model
//! profiles, job and user specifications, cluster topologies, and scheduler
//! configuration.
//!
//! The crate is deliberately free of scheduling logic: it only captures the
//! *nouns* of the system so that the simulator (`gfair-sim`), the scheduling
//! primitives (`gfair-stride`) and the Gandiva_fair scheduler itself
//! (`gfair-core`) can interoperate without depending on each other.

#![warn(missing_docs)]

pub mod cluster;
pub mod config;
pub mod error;
pub mod fault;
pub mod gpu;
pub mod ids;
pub mod job;
pub mod model;
pub mod time;
pub mod user;

pub use cluster::{ClusterSpec, ServerSpec};
pub use config::{PriceStrategy, SimConfig};
pub use error::GfairError;
pub use fault::MigrationFailReason;
pub use gpu::{GenCatalog, GpuGeneration};
pub use ids::{GenId, JobId, ServerId, UserId};
pub use job::{JobSpec, JobState};
pub use model::ModelProfile;
pub use time::{SimDuration, SimTime};
pub use user::UserSpec;

/// Result alias used across the workspace.
pub type Result<T> = std::result::Result<T, GfairError>;
