//! Deep-learning model profiles.
//!
//! A [`ModelProfile`] is the simulator's *ground truth* about how fast one
//! instance of a model trains on each GPU generation, and how expensive it is
//! to checkpoint/migrate. The central observation reproduced from the paper
//! (its Figure 1 / "variable marginal utility") is that the speedup a model
//! gets from a newer GPU varies enormously — from ~1.2x to ~5x between K80
//! and V100 — depending on whether the model is compute-bound.
//!
//! Schedulers never read the true rates directly; they learn them through the
//! (noisy) profiling reports produced by the simulator, exactly as
//! Gandiva_fair profiles jobs transparently in a real cluster.

use crate::gpu::GenCatalog;
use crate::ids::GenId;
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Ground-truth performance profile of one deep-learning model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Model name, e.g. `"ResNet-50"`.
    pub name: String,
    /// True training rate on each generation, indexed by [`GenId`], in
    /// *work units per second per GPU*.
    ///
    /// By convention the slowest generation has rate 1.0, so a job's service
    /// demand is expressed in "slowest-GPU seconds" and `rates[g]` is exactly
    /// the speedup of generation `g` over the base generation.
    pub rates: Vec<f64>,
    /// Time to checkpoint the job state (weights + optimizer) to shared
    /// storage, charged when a job is suspended for migration.
    pub checkpoint: SimDuration,
    /// Time to restore the job on the destination server (image pull is
    /// assumed warm, as in the paper's prototype).
    pub restore: SimDuration,
}

impl ModelProfile {
    /// Builds a profile from per-generation speedups over the base generation.
    ///
    /// # Panics
    ///
    /// Panics if `speedups` is empty, if the base rate is not 1.0, or if any
    /// rate is not strictly positive and finite, or if rates are not
    /// non-decreasing (a newer generation is never slower in practice).
    pub fn new(
        name: &str,
        speedups: Vec<f64>,
        checkpoint: SimDuration,
        restore: SimDuration,
    ) -> Self {
        assert!(!speedups.is_empty(), "model needs at least one rate");
        assert!(
            (speedups[0] - 1.0).abs() < 1e-9,
            "base-generation rate must be 1.0, got {}",
            speedups[0]
        );
        for w in speedups.windows(2) {
            assert!(
                w[0].is_finite() && w[0] > 0.0 && w[1].is_finite() && w[1] > 0.0,
                "rates must be positive and finite"
            );
            assert!(
                w[1] >= w[0],
                "rates must be non-decreasing across generations ({} < {})",
                w[1],
                w[0]
            );
        }
        ModelProfile {
            name: name.to_string(),
            rates: speedups,
            checkpoint,
            restore,
        }
    }

    /// Convenience constructor with typical checkpoint/restore costs
    /// (30 s checkpoint, 30 s restore — the paper reports sub-minute
    /// migration overheads for its model suite).
    pub fn with_default_overheads(name: &str, speedups: Vec<f64>) -> Self {
        Self::new(
            name,
            speedups,
            SimDuration::from_secs(30),
            SimDuration::from_secs(30),
        )
    }

    /// True rate (work units/sec/GPU) on generation `gen`.
    ///
    /// # Panics
    ///
    /// Panics if `gen` is out of range for this profile.
    pub fn rate(&self, gen: GenId) -> f64 {
        self.rates[gen.index()]
    }

    /// Speedup of generation `gen` over the base generation (same as
    /// [`rate`](Self::rate) because the base rate is 1.0 by construction).
    pub fn speedup(&self, gen: GenId) -> f64 {
        self.rate(gen)
    }

    /// Speedup of generation `fast` relative to generation `slow`.
    pub fn relative_speedup(&self, fast: GenId, slow: GenId) -> f64 {
        self.rate(fast) / self.rate(slow)
    }

    /// Total migration outage this model suffers when moved between servers.
    pub fn migration_cost(&self) -> SimDuration {
        self.checkpoint + self.restore
    }

    /// Checks that the profile has a rate for every generation in
    /// `catalog`. Profiles may carry rates for more generations than a
    /// given cluster uses (e.g. the three-generation zoo models running on
    /// a homogeneous cluster, where only the base rate applies).
    pub fn covers(&self, catalog: &GenCatalog) -> bool {
        self.rates.len() >= catalog.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resnet() -> ModelProfile {
        ModelProfile::with_default_overheads("ResNet-50", vec![1.0, 2.5, 4.0])
    }

    #[test]
    fn rate_and_speedup_agree() {
        let m = resnet();
        assert_eq!(m.rate(GenId::new(0)), 1.0);
        assert_eq!(m.rate(GenId::new(2)), 4.0);
        assert_eq!(m.speedup(GenId::new(2)), 4.0);
    }

    #[test]
    fn relative_speedup_between_generations() {
        let m = resnet();
        let rel = m.relative_speedup(GenId::new(2), GenId::new(1));
        assert!((rel - 1.6).abs() < 1e-12);
    }

    #[test]
    fn migration_cost_sums_checkpoint_and_restore() {
        let m = ModelProfile::new(
            "GRU",
            vec![1.0, 1.1, 1.2],
            SimDuration::from_secs(10),
            SimDuration::from_secs(20),
        );
        assert_eq!(m.migration_cost(), SimDuration::from_secs(30));
    }

    #[test]
    fn covers_checks_catalog_arity() {
        let m = resnet();
        assert!(m.covers(&GenCatalog::k80_p100_v100()));
        // Extra rates are fine: only the first one is used on a
        // single-generation cluster.
        assert!(m.covers(&GenCatalog::homogeneous("P100")));
        let narrow = ModelProfile::with_default_overheads("n", vec![1.0]);
        assert!(!narrow.covers(&GenCatalog::k80_p100_v100()));
    }

    #[test]
    #[should_panic(expected = "base-generation rate must be 1.0")]
    fn base_rate_must_be_one() {
        let _ = ModelProfile::with_default_overheads("bad", vec![2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_rates_panic() {
        let _ = ModelProfile::with_default_overheads("bad", vec![1.0, 3.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "at least one rate")]
    fn empty_rates_panic() {
        let _ = ModelProfile::with_default_overheads("bad", vec![]);
    }

    #[test]
    fn serde_round_trip() {
        let m = resnet();
        let json = serde_json::to_string(&m).unwrap();
        let back: ModelProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
