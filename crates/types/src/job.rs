//! Job specifications and lifecycle states.
//!
//! A deep-learning training (DLT) job in Gandiva_fair is a *gang*: all of its
//! GPUs must be allocated in the same time quantum on the same server (the
//! paper schedules multi-GPU jobs within one server and time-slices them with
//! minute-granularity suspend/resume). Service demand is expressed in
//! "slowest-generation GPU seconds", so a job's runtime depends on which
//! generation it lands on and how much of each quantum it wins.

use crate::ids::{JobId, UserId};
use crate::model::ModelProfile;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Immutable specification of a training job, as submitted by a user.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobSpec {
    /// Unique job identifier.
    pub id: JobId,
    /// Owning user.
    pub user: UserId,
    /// Ground-truth performance profile of the model being trained.
    ///
    /// `Arc` because thousands of jobs share the handful of zoo models.
    pub model: Arc<ModelProfile>,
    /// Gang size: number of GPUs this job needs simultaneously.
    pub gang: u32,
    /// Total service demand in base-generation GPU-seconds *per GPU*.
    ///
    /// A `gang = 4` job with `service_secs = 3600` needs each of its 4 GPUs
    /// for 3600 base-GPU-seconds; on a generation with speedup 2.0 and
    /// exclusive access it completes in 1800 wall-clock seconds.
    pub service_secs: f64,
    /// Submission time.
    pub arrival: SimTime,
}

impl JobSpec {
    /// Creates a job spec.
    ///
    /// # Panics
    ///
    /// Panics if `gang` is zero or `service_secs` is not strictly positive
    /// and finite.
    pub fn new(
        id: JobId,
        user: UserId,
        model: Arc<ModelProfile>,
        gang: u32,
        service_secs: f64,
        arrival: SimTime,
    ) -> Self {
        assert!(gang > 0, "gang size must be at least 1");
        assert!(
            service_secs.is_finite() && service_secs > 0.0,
            "service demand must be positive and finite, got {service_secs}"
        );
        JobSpec {
            id,
            user,
            model,
            gang,
            service_secs,
            arrival,
        }
    }

    /// Total demand of the job in base-generation GPU-seconds across all of
    /// its GPUs (`gang * service_secs`).
    pub fn total_gpu_secs(&self) -> f64 {
        self.gang as f64 * self.service_secs
    }

    /// Wall-clock runtime if the job ran exclusively on generation `gen`.
    pub fn exclusive_runtime_secs(&self, gen: crate::ids::GenId) -> f64 {
        self.service_secs / self.model.rate(gen)
    }
}

/// Lifecycle state of a job inside the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Submitted but not yet placed on any server.
    Pending,
    /// Resident on a server; may or may not be running in the current round.
    Resident,
    /// In flight between servers; suspended and making no progress.
    Migrating,
    /// All service demand completed.
    Finished,
}

impl JobState {
    /// Returns true if the job can be included in a server's round plan.
    pub fn is_schedulable(self) -> bool {
        matches!(self, JobState::Resident)
    }

    /// Returns true if the job still holds (or will hold) cluster resources.
    pub fn is_active(self) -> bool {
        !matches!(self, JobState::Finished)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::GenId;

    fn spec(gang: u32, service: f64) -> JobSpec {
        JobSpec::new(
            JobId::new(1),
            UserId::new(0),
            Arc::new(ModelProfile::with_default_overheads(
                "ResNet-50",
                vec![1.0, 2.0, 4.0],
            )),
            gang,
            service,
            SimTime::ZERO,
        )
    }

    #[test]
    fn total_gpu_secs_scales_with_gang() {
        let j = spec(4, 100.0);
        assert_eq!(j.total_gpu_secs(), 400.0);
    }

    #[test]
    fn exclusive_runtime_divides_by_rate() {
        let j = spec(1, 1000.0);
        assert_eq!(j.exclusive_runtime_secs(GenId::new(0)), 1000.0);
        assert_eq!(j.exclusive_runtime_secs(GenId::new(2)), 250.0);
    }

    #[test]
    #[should_panic(expected = "gang size")]
    fn zero_gang_panics() {
        let _ = spec(0, 100.0);
    }

    #[test]
    #[should_panic(expected = "service demand")]
    fn zero_service_panics() {
        let _ = spec(1, 0.0);
    }

    #[test]
    fn state_predicates() {
        assert!(JobState::Resident.is_schedulable());
        assert!(!JobState::Pending.is_schedulable());
        assert!(!JobState::Migrating.is_schedulable());
        assert!(!JobState::Finished.is_schedulable());
        assert!(JobState::Pending.is_active());
        assert!(JobState::Migrating.is_active());
        assert!(!JobState::Finished.is_active());
    }
}
