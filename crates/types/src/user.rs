//! Users (tenants) and their ticket endowments.
//!
//! Gandiva_fair implements *ticket-based* fairness (stride/lottery style):
//! each user holds a number of tickets, and active users receive cluster-wide
//! GPU time in proportion to their tickets. Tickets are an abstract currency;
//! equal tickets mean equal shares.

use crate::ids::UserId;
use serde::{Deserialize, Serialize};

/// A user (tenant) of the shared cluster.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UserSpec {
    /// Unique user identifier.
    pub id: UserId,
    /// Human-readable name for reports.
    pub name: String,
    /// Ticket endowment; cluster GPU time is divided among *active* users in
    /// proportion to tickets.
    pub tickets: u64,
}

impl UserSpec {
    /// Creates a user with the given ticket endowment.
    ///
    /// # Panics
    ///
    /// Panics if `tickets` is zero — a zero-ticket user could never be
    /// scheduled and indicates a configuration error.
    pub fn new(id: UserId, name: &str, tickets: u64) -> Self {
        assert!(tickets > 0, "user {name} must hold at least one ticket");
        UserSpec {
            id,
            name: name.to_string(),
            tickets,
        }
    }

    /// Creates `n` users named `user0..userN-1` with equal tickets.
    pub fn equal_users(n: u32, tickets: u64) -> Vec<UserSpec> {
        (0..n)
            .map(|i| UserSpec::new(UserId::new(i), &format!("user{i}"), tickets))
            .collect()
    }
}

/// Computes each user's fractional fair share of the cluster from tickets.
///
/// Only the users present in `users` participate (callers pass the *active*
/// set). Returns an empty vector for an empty input.
///
/// # Examples
///
/// ```
/// use gfair_types::user::{fair_shares, UserSpec};
/// use gfair_types::ids::UserId;
///
/// let users = vec![
///     UserSpec::new(UserId::new(0), "a", 100),
///     UserSpec::new(UserId::new(1), "b", 300),
/// ];
/// let shares = fair_shares(&users);
/// assert_eq!(shares, vec![(UserId::new(0), 0.25), (UserId::new(1), 0.75)]);
/// ```
pub fn fair_shares(users: &[UserSpec]) -> Vec<(UserId, f64)> {
    let total: u64 = users.iter().map(|u| u.tickets).sum();
    if total == 0 {
        return Vec::new();
    }
    users
        .iter()
        .map(|u| (u.id, u.tickets as f64 / total as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_users_get_equal_shares() {
        let users = UserSpec::equal_users(4, 100);
        let shares = fair_shares(&users);
        assert_eq!(shares.len(), 4);
        for (_, s) in shares {
            assert!((s - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn shares_are_ticket_proportional() {
        let users = vec![
            UserSpec::new(UserId::new(0), "small", 1),
            UserSpec::new(UserId::new(1), "big", 3),
        ];
        let shares = fair_shares(&users);
        assert!((shares[0].1 - 0.25).abs() < 1e-12);
        assert!((shares[1].1 - 0.75).abs() < 1e-12);
    }

    #[test]
    fn shares_sum_to_one() {
        let users = vec![
            UserSpec::new(UserId::new(0), "a", 7),
            UserSpec::new(UserId::new(1), "b", 11),
            UserSpec::new(UserId::new(2), "c", 13),
        ];
        let total: f64 = fair_shares(&users).iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_user_set_gives_empty_shares() {
        assert!(fair_shares(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one ticket")]
    fn zero_tickets_panics() {
        let _ = UserSpec::new(UserId::new(0), "ghost", 0);
    }

    #[test]
    fn equal_users_are_named_sequentially() {
        let users = UserSpec::equal_users(2, 10);
        assert_eq!(users[0].name, "user0");
        assert_eq!(users[1].name, "user1");
        assert_eq!(users[1].id, UserId::new(1));
    }
}
