//! Workspace error type.
//!
//! Scheduling decisions returned to the simulator are validated before being
//! applied; invalid decisions (placing a gang that does not fit, scheduling a
//! non-resident job, overcommitting a server's GPUs) are reported through
//! [`GfairError`] rather than silently ignored, so scheduler bugs surface in
//! tests immediately.

use crate::ids::{JobId, ServerId};
use std::error::Error;
use std::fmt;

/// Errors produced while validating or applying scheduling decisions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GfairError {
    /// A decision referenced a job the simulator does not know about.
    UnknownJob(JobId),
    /// A decision referenced a server outside the cluster.
    UnknownServer(ServerId),
    /// A gang was placed on a server with fewer GPUs than the gang size.
    GangDoesNotFit {
        /// Offending job.
        job: JobId,
        /// Target server.
        server: ServerId,
        /// Gang size requested.
        gang: u32,
        /// GPUs available on the server.
        gpus: u32,
    },
    /// A round plan scheduled more GPUs than the server has.
    ServerOvercommitted {
        /// Offending server.
        server: ServerId,
        /// Sum of gang sizes in the plan.
        requested: u32,
        /// GPUs available.
        gpus: u32,
    },
    /// A round plan included a job that is not resident on that server.
    JobNotResident {
        /// Offending job.
        job: JobId,
        /// Server whose plan listed it.
        server: ServerId,
    },
    /// A job appeared more than once in a single round plan.
    DuplicateJobInPlan(JobId),
    /// A migration was requested for a job that cannot move (pending,
    /// already migrating, or finished).
    NotMigratable(JobId),
    /// Configuration failed validation.
    InvalidConfig(String),
    /// The simulation exceeded its round-count safety limit (usually a
    /// scheduler that never places pending jobs).
    RoundLimitExceeded(u64),
    /// A decision targeted a server that is currently failed.
    ServerDown(ServerId),
    /// The online auditor detected a scheduler invariant violation that has
    /// no dedicated variant (e.g. a partial gang or non-conserved tickets).
    /// The payload carries the auditor's report, including the offending
    /// round's trace.
    InvariantViolation(String),
}

impl fmt::Display for GfairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GfairError::UnknownJob(j) => write!(f, "unknown job {j}"),
            GfairError::UnknownServer(s) => write!(f, "unknown server {s}"),
            GfairError::GangDoesNotFit {
                job,
                server,
                gang,
                gpus,
            } => write!(
                f,
                "job {job} (gang {gang}) does not fit on server {server} ({gpus} GPUs)"
            ),
            GfairError::ServerOvercommitted {
                server,
                requested,
                gpus,
            } => write!(
                f,
                "round plan for {server} requests {requested} GPUs but only {gpus} exist"
            ),
            GfairError::JobNotResident { job, server } => {
                write!(f, "job {job} is not resident on server {server}")
            }
            GfairError::DuplicateJobInPlan(j) => {
                write!(f, "job {j} appears more than once in a round plan")
            }
            GfairError::NotMigratable(j) => write!(f, "job {j} cannot be migrated"),
            GfairError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            GfairError::RoundLimitExceeded(n) => {
                write!(f, "simulation exceeded the round safety limit of {n}")
            }
            GfairError::ServerDown(s) => write!(f, "server {s} is down"),
            GfairError::InvariantViolation(report) => {
                write!(f, "scheduler invariant violated: {report}")
            }
        }
    }
}

impl Error for GfairError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_have_readable_messages() {
        let e = GfairError::GangDoesNotFit {
            job: JobId::new(3),
            server: ServerId::new(1),
            gang: 8,
            gpus: 4,
        };
        let msg = e.to_string();
        assert!(msg.contains("J3"));
        assert!(msg.contains("S1"));
        assert!(msg.contains("8"));
        assert!(msg.contains("4"));
    }

    #[test]
    fn error_implements_std_error() {
        fn takes_error(_: &dyn Error) {}
        takes_error(&GfairError::UnknownJob(JobId::new(0)));
    }

    #[test]
    fn overcommit_message_mentions_counts() {
        let e = GfairError::ServerOvercommitted {
            server: ServerId::new(2),
            requested: 12,
            gpus: 8,
        };
        assert!(e.to_string().contains("12"));
        assert!(e.to_string().contains("8"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            GfairError::UnknownJob(JobId::new(1)),
            GfairError::UnknownJob(JobId::new(1))
        );
        assert_ne!(
            GfairError::UnknownJob(JobId::new(1)),
            GfairError::NotMigratable(JobId::new(1))
        );
    }
}
