//! Deterministic simulated time.
//!
//! The simulator uses integer microseconds so that event ordering and
//! accounting are exact and reproducible across platforms — floating-point
//! time would make long simulations drift and make test assertions brittle.
//!
//! [`SimTime`] is a point on the simulation clock; [`SimDuration`] is a span
//! between two points. Both are thin wrappers over `u64` microseconds with
//! the arithmetic one expects (`SimTime + SimDuration = SimTime`,
//! `SimTime - SimTime = SimDuration`, scalar multiplication of durations).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Microseconds per second.
const MICROS_PER_SEC: u64 = 1_000_000;

/// A point in simulated time, measured in microseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulated time, measured in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * MICROS_PER_SEC)
    }

    /// Creates an instant from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Returns the instant as fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Returns the instant as whole seconds, truncating sub-second precision.
    pub const fn as_secs(self) -> u64 {
        self.0 / MICROS_PER_SEC
    }

    /// Returns the raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the duration elapsed since `earlier`, saturating at zero.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * MICROS_PER_SEC)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60 * MICROS_PER_SEC)
    }

    /// Creates a duration from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3600 * MICROS_PER_SEC)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration from fractional seconds, rounding to microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Returns the duration as whole seconds, truncating.
    pub const fn as_secs(self) -> u64 {
        self.0 / MICROS_PER_SEC
    }

    /// Returns the raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns true if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the duration by a non-negative float, rounding to microseconds.
    pub fn mul_f64(self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "factor must be finite and non-negative, got {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Returns the ratio of this duration to another as a float.
    ///
    /// Returns 0.0 when `other` is zero.
    pub fn ratio(self, other: SimDuration) -> f64 {
        if other.0 == 0 {
            0.0
        } else {
            self.0 as f64 / other.0 as f64
        }
    }

    /// Subtracts, saturating at zero.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_secs = self.as_secs();
        let (h, m, s) = (total_secs / 3600, (total_secs % 3600) / 60, total_secs % 60);
        write!(f, "{h:02}:{m:02}:{s:02}")
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_plus_duration() {
        let t = SimTime::from_secs(10) + SimDuration::from_secs(5);
        assert_eq!(t, SimTime::from_secs(15));
    }

    #[test]
    fn time_difference_is_duration() {
        let d = SimTime::from_secs(90) - SimTime::from_secs(30);
        assert_eq!(d, SimDuration::from_mins(1));
    }

    #[test]
    fn saturating_since_clamps_at_zero() {
        let early = SimTime::from_secs(5);
        let late = SimTime::from_secs(10);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(5));
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_mins(2), SimDuration::from_secs(120));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
        assert_eq!(
            SimDuration::from_micros(1_000_000),
            SimDuration::from_secs(1)
        );
    }

    #[test]
    fn duration_float_round_trip() {
        let d = SimDuration::from_secs_f64(1.5);
        assert_eq!(d.as_micros(), 1_500_000);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn duration_from_negative_float_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn duration_scalar_math() {
        let q = SimDuration::from_secs(60);
        assert_eq!(q * 3, SimDuration::from_mins(3));
        assert_eq!(q / 2, SimDuration::from_secs(30));
        assert_eq!(q.mul_f64(0.5), SimDuration::from_secs(30));
    }

    #[test]
    fn duration_ratio() {
        let a = SimDuration::from_secs(30);
        let b = SimDuration::from_secs(60);
        assert!((a.ratio(b) - 0.5).abs() < 1e-12);
        assert_eq!(a.ratio(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn duration_saturating_sub() {
        let a = SimDuration::from_secs(5);
        let b = SimDuration::from_secs(8);
        assert_eq!(b.saturating_sub(a), SimDuration::from_secs(3));
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_secs(3_725).to_string(), "01:02:05");
        assert_eq!(SimDuration::from_secs(90).to_string(), "90.0s");
    }

    #[test]
    fn min_max_helpers() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        let x = SimDuration::from_secs(1);
        let y = SimDuration::from_secs(2);
        assert_eq!(x.min(y), x);
        assert_eq!(x.max(y), y);
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::ZERO < SimTime::from_micros(1));
        assert!(SimTime::from_micros(1) < SimTime::MAX);
    }
}
