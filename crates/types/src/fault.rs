//! Failure-reason vocabulary for migration and placement faults.
//!
//! The fault-injection subsystem (`gfair-faults`) decides *when* something
//! breaks; the simulator reports *what* broke through this shared enum so
//! the observability layer, the auditor, and recovering schedulers all
//! speak the same language.

use std::fmt;

/// Why a migration (or undeliverable placement) decision failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MigrationFailReason {
    /// The checkpoint write on the source server failed; the job never left
    /// and keeps running where it was.
    Checkpoint,
    /// The restore on the destination server failed after the checkpoint
    /// completed; the job is back in the pending queue (its checkpointed
    /// progress is kept).
    Restore,
    /// The destination server failed between the decision and its
    /// application (or while the job was in flight); the job is re-queued
    /// or stays at its source.
    TargetDown,
    /// The decision targeted (or sourced from) a server whose local
    /// scheduler the central scheduler cannot currently reach because of a
    /// network partition; the decision was undeliverable.
    Unreachable,
}

impl MigrationFailReason {
    /// Stable string form used in JSONL traces.
    pub fn as_str(self) -> &'static str {
        match self {
            MigrationFailReason::Checkpoint => "checkpoint",
            MigrationFailReason::Restore => "restore",
            MigrationFailReason::TargetDown => "target_down",
            MigrationFailReason::Unreachable => "unreachable",
        }
    }

    /// Inverse of [`as_str`](Self::as_str): parses the stable trace string.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "checkpoint" => Some(MigrationFailReason::Checkpoint),
            "restore" => Some(MigrationFailReason::Restore),
            "target_down" => Some(MigrationFailReason::TargetDown),
            "unreachable" => Some(MigrationFailReason::Unreachable),
            _ => None,
        }
    }
}

impl fmt::Display for MigrationFailReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_strings_are_stable() {
        assert_eq!(MigrationFailReason::Checkpoint.as_str(), "checkpoint");
        assert_eq!(MigrationFailReason::Restore.as_str(), "restore");
        assert_eq!(MigrationFailReason::TargetDown.as_str(), "target_down");
        assert_eq!(MigrationFailReason::Unreachable.as_str(), "unreachable");
        assert_eq!(MigrationFailReason::Restore.to_string(), "restore");
    }

    #[test]
    fn parse_round_trips_every_reason() {
        for r in [
            MigrationFailReason::Checkpoint,
            MigrationFailReason::Restore,
            MigrationFailReason::TargetDown,
            MigrationFailReason::Unreachable,
        ] {
            assert_eq!(MigrationFailReason::parse(r.as_str()), Some(r));
        }
        assert_eq!(MigrationFailReason::parse("gremlins"), None);
    }
}
