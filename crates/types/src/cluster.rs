//! Cluster topology: servers and their GPUs.
//!
//! A cluster is a flat list of servers; each server carries a number of GPUs
//! of a single generation (as in the paper's testbed, where servers are
//! homogeneous internally but the cluster mixes K80/P100/V100 machines).
//! Gangs must fit within a single server, mirroring Gandiva_fair's placement
//! constraint for time-sliced jobs.

use crate::gpu::GenCatalog;
use crate::ids::{GenId, ServerId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A physical server hosting `num_gpus` GPUs of one generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerSpec {
    /// Unique server identifier (index into [`ClusterSpec::servers`]).
    pub id: ServerId,
    /// GPU generation installed in this server.
    pub gen: GenId,
    /// Number of GPUs (typically 4 or 8).
    pub num_gpus: u32,
}

/// Static description of a GPU cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Generations present in the cluster.
    pub catalog: GenCatalog,
    /// All servers, indexed by [`ServerId`].
    pub servers: Vec<ServerSpec>,
}

impl ClusterSpec {
    /// Builds a cluster from `(generation name, server count, gpus/server)`
    /// rows against a catalog.
    ///
    /// # Panics
    ///
    /// Panics if a row names an unknown generation, if a server would have
    /// zero GPUs, or if no servers are specified.
    pub fn build(catalog: GenCatalog, rows: &[(&str, u32, u32)]) -> Self {
        let mut servers = Vec::new();
        for &(name, count, gpus) in rows {
            let gen = catalog
                .by_name(name)
                .unwrap_or_else(|| panic!("unknown generation {name}"))
                .id;
            assert!(gpus > 0, "servers must have at least one GPU");
            for _ in 0..count {
                servers.push(ServerSpec {
                    id: ServerId::new(servers.len() as u32),
                    gen,
                    num_gpus: gpus,
                });
            }
        }
        assert!(!servers.is_empty(), "cluster must have at least one server");
        ClusterSpec { catalog, servers }
    }

    /// A homogeneous cluster: `servers` machines with `gpus_per_server` GPUs
    /// of a single generation.
    pub fn homogeneous(servers: u32, gpus_per_server: u32) -> Self {
        let catalog = GenCatalog::homogeneous("P100");
        Self::build(catalog, &[("P100", servers, gpus_per_server)])
    }

    /// The paper-scale heterogeneous testbed: 200 GPUs as a K80/P100/V100
    /// mix (128 K80 + 48 P100 + 24 V100, grouped 8/4/4 GPUs per server).
    ///
    /// The exact composition of the paper's cluster is not in the abstract;
    /// this preset preserves the properties that matter: ~200 GPUs, three
    /// generations, most capacity in the oldest generation (the situation
    /// that motivates trading).
    pub fn paper_testbed() -> Self {
        Self::build(
            GenCatalog::k80_p100_v100(),
            &[("K80", 16, 8), ("P100", 12, 4), ("V100", 6, 4)],
        )
    }

    /// Total GPUs in the cluster.
    pub fn total_gpus(&self) -> u32 {
        self.servers.iter().map(|s| s.num_gpus).sum()
    }

    /// GPUs per generation, keyed by generation id.
    pub fn gpus_per_gen(&self) -> BTreeMap<GenId, u32> {
        let mut m = BTreeMap::new();
        for s in &self.servers {
            *m.entry(s.gen).or_insert(0) += s.num_gpus;
        }
        m
    }

    /// Servers of a given generation.
    pub fn servers_of_gen(&self, gen: GenId) -> impl Iterator<Item = &ServerSpec> {
        self.servers.iter().filter(move |s| s.gen == gen)
    }

    /// Looks up a server by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn server(&self, id: ServerId) -> &ServerSpec {
        &self.servers[id.index()]
    }

    /// Largest gang the cluster can host (the widest single server).
    pub fn max_gang(&self) -> u32 {
        self.servers.iter().map(|s| s.num_gpus).max().unwrap_or(0)
    }

    /// Total cluster capacity in base-generation GPU units, using nominal
    /// generation speeds (an upper bound used for utilization reporting).
    pub fn nominal_capacity(&self) -> f64 {
        self.servers
            .iter()
            .map(|s| s.num_gpus as f64 * self.catalog.get(s.gen).nominal_speed)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_has_200_gpus() {
        let c = ClusterSpec::paper_testbed();
        assert_eq!(c.total_gpus(), 200);
        let per_gen = c.gpus_per_gen();
        assert_eq!(per_gen[&GenId::new(0)], 128); // K80
        assert_eq!(per_gen[&GenId::new(1)], 48); // P100
        assert_eq!(per_gen[&GenId::new(2)], 24); // V100
    }

    #[test]
    fn server_ids_are_dense_indices() {
        let c = ClusterSpec::paper_testbed();
        for (i, s) in c.servers.iter().enumerate() {
            assert_eq!(s.id.index(), i);
        }
        assert_eq!(c.server(ServerId::new(0)).gen, GenId::new(0));
    }

    #[test]
    fn homogeneous_cluster() {
        let c = ClusterSpec::homogeneous(3, 8);
        assert_eq!(c.total_gpus(), 24);
        assert_eq!(c.max_gang(), 8);
        assert!(c.catalog.is_homogeneous());
    }

    #[test]
    fn servers_of_gen_filters() {
        let c = ClusterSpec::paper_testbed();
        let v100_servers: Vec<_> = c.servers_of_gen(GenId::new(2)).collect();
        assert_eq!(v100_servers.len(), 6);
        assert!(v100_servers.iter().all(|s| s.num_gpus == 4));
    }

    #[test]
    fn nominal_capacity_weighs_generations() {
        let c = ClusterSpec::build(
            GenCatalog::k80_p100_v100(),
            &[("K80", 1, 2), ("V100", 1, 2)],
        );
        // 2 * 1.0 + 2 * 3.5 = 9.0 base-GPU units.
        assert!((c.nominal_capacity() - 9.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "unknown generation")]
    fn unknown_generation_panics() {
        let _ = ClusterSpec::build(GenCatalog::k80_p100_v100(), &[("A100", 1, 8)]);
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn zero_gpu_server_panics() {
        let _ = ClusterSpec::build(GenCatalog::k80_p100_v100(), &[("K80", 1, 0)]);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_cluster_panics() {
        let _ = ClusterSpec::build(GenCatalog::k80_p100_v100(), &[]);
    }
}
