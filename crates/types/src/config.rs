//! Simulation and scheduler configuration knobs.
//!
//! Defaults follow the paper's prototype: minute-granularity time slicing
//! (Gandiva-style suspend/resume rounds), periodic load balancing and
//! trading, and a conservative trade price that guarantees no user is worse
//! off than their ticket entitlement.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// How the trading engine prices a fast GPU in units of slow GPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PriceStrategy {
    /// Price equals the *buyer's* profiled speedup — the paper's conservative
    /// rate: the buyer pays exactly what the fast GPU is worth to them, so
    /// their valuation is unchanged, while the seller strictly gains.
    /// No user can end up below their entitlement.
    #[default]
    MaxSpeedup,
    /// Price is the midpoint of seller and buyer speedups, splitting the
    /// gains from trade between both parties (ablation A1).
    Midpoint,
}

/// Top-level configuration for a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Time-slicing quantum (one scheduling round). The paper uses
    /// minute-granularity suspend/resume.
    pub quantum: SimDuration,
    /// How often the central scheduler rebalances load via migration.
    pub balance_interval: SimDuration,
    /// How often the trading engine runs.
    pub trade_interval: SimDuration,
    /// How long a job must run on a generation before the simulator emits a
    /// profiling report for that (job, generation) pair.
    pub profile_stint: SimDuration,
    /// Multiplicative noise applied to profiled rates (0.05 = ±5%).
    pub profile_noise: f64,
    /// Trade pricing strategy.
    pub price_strategy: PriceStrategy,
    /// Maximum number of migrations the balancer may issue per balance tick
    /// (bounds checkpoint/restore churn).
    pub max_migrations_per_tick: u32,
    /// Minimum time a job stays put after a migration before it may be moved
    /// again (prevents migration thrashing).
    pub migration_cooldown: SimDuration,
    /// Suspend/resume cost a job pays at the start of a round when it was
    /// not running in the previous round (Gandiva-style time-slicing
    /// overhead). The GPU is occupied for the whole quantum but no training
    /// progress is made during the switch. Zero by default so experiments
    /// opt in explicitly.
    pub switch_overhead: SimDuration,
    /// Length of one reporting window in the output time series (per-user
    /// shares and utilization are accumulated per window).
    pub report_window: SimDuration,
    /// RNG seed for the run; all randomness (workload, noise, lottery
    /// scheduling) derives from this.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            quantum: SimDuration::from_secs(60),
            balance_interval: SimDuration::from_mins(5),
            trade_interval: SimDuration::from_mins(10),
            profile_stint: SimDuration::from_mins(3),
            profile_noise: 0.05,
            price_strategy: PriceStrategy::MaxSpeedup,
            max_migrations_per_tick: 8,
            migration_cooldown: SimDuration::from_mins(10),
            switch_overhead: SimDuration::ZERO,
            report_window: SimDuration::from_mins(5),
            seed: 42,
        }
    }
}

impl SimConfig {
    /// Returns a copy with the given seed (builder-style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with the given quantum.
    pub fn with_quantum(mut self, quantum: SimDuration) -> Self {
        self.quantum = quantum;
        self
    }

    /// Returns a copy with the given price strategy.
    pub fn with_price_strategy(mut self, strategy: PriceStrategy) -> Self {
        self.price_strategy = strategy;
        self
    }

    /// Returns a copy with the given suspend/resume overhead.
    pub fn with_switch_overhead(mut self, overhead: SimDuration) -> Self {
        self.switch_overhead = overhead;
        self
    }

    /// Validates internal consistency of the configuration.
    ///
    /// Returns a human-readable list of problems; empty means valid.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.quantum.is_zero() {
            problems.push("quantum must be positive".to_string());
        }
        if self.balance_interval < self.quantum {
            problems.push("balance_interval must be at least one quantum".to_string());
        }
        if self.trade_interval < self.quantum {
            problems.push("trade_interval must be at least one quantum".to_string());
        }
        if !(0.0..1.0).contains(&self.profile_noise) {
            problems.push(format!(
                "profile_noise must be in [0, 1), got {}",
                self.profile_noise
            ));
        }
        if self.profile_stint < self.quantum {
            problems.push("profile_stint must be at least one quantum".to_string());
        }
        if self.report_window < self.quantum {
            problems.push("report_window must be at least one quantum".to_string());
        }
        if self.switch_overhead >= self.quantum && !self.quantum.is_zero() {
            problems.push("switch_overhead must be smaller than the quantum".to_string());
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(SimConfig::default().validate().is_empty());
    }

    #[test]
    fn builder_methods_set_fields() {
        let c = SimConfig::default()
            .with_seed(7)
            .with_quantum(SimDuration::from_secs(30))
            .with_price_strategy(PriceStrategy::Midpoint);
        assert_eq!(c.seed, 7);
        assert_eq!(c.quantum, SimDuration::from_secs(30));
        assert_eq!(c.price_strategy, PriceStrategy::Midpoint);
    }

    #[test]
    fn zero_quantum_is_invalid() {
        let c = SimConfig::default().with_quantum(SimDuration::ZERO);
        let problems = c.validate();
        assert!(problems.iter().any(|p| p.contains("quantum")));
    }

    #[test]
    fn short_intervals_are_invalid() {
        let mut c = SimConfig::default();
        c.balance_interval = SimDuration::from_secs(1);
        c.trade_interval = SimDuration::from_secs(1);
        c.profile_stint = SimDuration::from_secs(1);
        assert_eq!(c.validate().len(), 3);
    }

    #[test]
    fn bad_noise_is_invalid() {
        let mut c = SimConfig::default();
        c.profile_noise = 1.5;
        assert!(!c.validate().is_empty());
        c.profile_noise = -0.1;
        assert!(!c.validate().is_empty());
    }

    #[test]
    fn default_price_strategy_is_max_speedup() {
        assert_eq!(PriceStrategy::default(), PriceStrategy::MaxSpeedup);
    }

    #[test]
    fn switch_overhead_must_fit_in_quantum() {
        let c = SimConfig::default().with_switch_overhead(SimDuration::from_secs(60));
        assert!(!c.validate().is_empty());
        let c = SimConfig::default().with_switch_overhead(SimDuration::from_secs(6));
        assert!(c.validate().is_empty());
    }
}
