//! Strongly-typed identifiers.
//!
//! Every entity in the system (jobs, users, servers, GPU generations) is
//! referred to by a newtype around a small integer. The newtypes prevent the
//! classic "passed a job id where a server id was expected" bug while staying
//! `Copy` and hash-friendly for use as map keys throughout the scheduler.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Creates an identifier from a raw index.
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw index backing this identifier.
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// Returns the raw index as a `usize`, for indexing into vectors.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u32 {
            fn from(id: $name) -> u32 {
                id.0
            }
        }
    };
}

id_type!(
    /// Identifier of a deep-learning training job.
    JobId,
    "J"
);

id_type!(
    /// Identifier of a user (tenant) sharing the cluster.
    UserId,
    "U"
);

id_type!(
    /// Identifier of a physical server hosting GPUs.
    ServerId,
    "S"
);

id_type!(
    /// Identifier of a GPU generation (e.g. K80, P100, V100).
    GenId,
    "G"
);

/// Allocates monotonically increasing identifiers of one kind.
///
/// Used by trace generators and tests to mint fresh ids without collisions.
///
/// # Examples
///
/// ```
/// use gfair_types::ids::{IdAllocator, JobId};
///
/// let mut alloc = IdAllocator::<JobId>::new();
/// assert_eq!(alloc.next(), JobId::new(0));
/// assert_eq!(alloc.next(), JobId::new(1));
/// ```
#[derive(Debug, Clone)]
pub struct IdAllocator<T> {
    next: u32,
    _marker: std::marker::PhantomData<T>,
}

impl<T: From<u32>> IdAllocator<T> {
    /// Creates an allocator starting at id 0.
    pub fn new() -> Self {
        Self {
            next: 0,
            _marker: std::marker::PhantomData,
        }
    }

    /// Creates an allocator starting at the given raw id.
    pub fn starting_at(raw: u32) -> Self {
        Self {
            next: raw,
            _marker: std::marker::PhantomData,
        }
    }

    /// Mints the next identifier.
    // The allocator is deliberately not an `Iterator` (it never ends and is
    // used imperatively), so the familiar name stays.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> T {
        let id = T::from(self.next);
        self.next += 1;
        id
    }

    /// Returns how many identifiers have been minted.
    pub fn minted(&self) -> u32 {
        self.next
    }
}

impl<T: From<u32>> Default for IdAllocator<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(JobId::new(7).to_string(), "J7");
        assert_eq!(UserId::new(3).to_string(), "U3");
        assert_eq!(ServerId::new(12).to_string(), "S12");
        assert_eq!(GenId::new(0).to_string(), "G0");
    }

    #[test]
    fn ids_debug_matches_display() {
        assert_eq!(format!("{:?}", JobId::new(9)), "J9");
    }

    #[test]
    fn ids_round_trip_through_u32() {
        let id = ServerId::from(42u32);
        assert_eq!(u32::from(id), 42);
        assert_eq!(id.raw(), 42);
        assert_eq!(id.index(), 42usize);
    }

    #[test]
    fn ids_are_ordered_by_raw_value() {
        assert!(JobId::new(1) < JobId::new(2));
        assert!(GenId::new(0) < GenId::new(1));
    }

    #[test]
    fn ids_work_as_map_keys() {
        let mut m = HashMap::new();
        m.insert(UserId::new(1), "alice");
        m.insert(UserId::new(2), "bob");
        assert_eq!(m[&UserId::new(1)], "alice");
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn allocator_mints_sequential_ids() {
        let mut alloc = IdAllocator::<JobId>::new();
        assert_eq!(alloc.next(), JobId::new(0));
        assert_eq!(alloc.next(), JobId::new(1));
        assert_eq!(alloc.minted(), 2);
    }

    #[test]
    fn allocator_starting_at_offset() {
        let mut alloc = IdAllocator::<ServerId>::starting_at(100);
        assert_eq!(alloc.next(), ServerId::new(100));
        assert_eq!(alloc.next(), ServerId::new(101));
    }

    #[test]
    fn ids_serialize_as_plain_integers() {
        let id = JobId::new(5);
        let json = serde_json::to_string(&id).unwrap();
        assert_eq!(json, "5");
        let back: JobId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, id);
    }
}
